// Terminal renderer: ANSI tables with sparkline trend glyphs, rolling
// mean ±1σ columns, breakdown fractions, and flagged regressions.

package main

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fingers/internal/trend"
)

// sparkGlyphs maps a normalised value to an eighth-block glyph.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkWidth caps how many trailing points a sparkline shows.
const sparkWidth = 16

// spark renders vs as a sparkline of its last sparkWidth values. Zero
// entries (no data for that point) render as '·'; a flat non-empty
// series renders mid-height.
func spark(vs []float64) string {
	if len(vs) > sparkWidth {
		vs = vs[len(vs)-sparkWidth:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if v == 0 {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range vs {
		switch {
		case v == 0:
			sb.WriteRune('·')
		case hi == lo:
			sb.WriteRune(sparkGlyphs[4])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
			sb.WriteRune(sparkGlyphs[idx])
		}
	}
	return sb.String()
}

// siFloat renders v with an SI suffix (4.34M, 12.1k) for compact
// cycles/sec columns.
func siFloat(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// colorizer gates ANSI escapes on one switch so goldens and pipes stay
// escape-free.
type colorizer struct{ on bool }

func (c colorizer) wrap(code, s string) string {
	if !c.on {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}

func (c colorizer) red(s string) string  { return c.wrap("31", s) }
func (c colorizer) dim(s string) string  { return c.wrap("2", s) }
func (c colorizer) bold(s string) string { return c.wrap("1", s) }

// fracCell renders a breakdown as compute/stall/overhead/idle percent.
func fracCell(f trend.BreakdownFrac) string {
	if f.Zero() {
		return "-"
	}
	return fmt.Sprintf("%2.0f/%2.0f/%2.0f/%2.0f",
		100*f.Compute, 100*f.Stall, 100*f.Overhead, 100*f.Idle)
}

// flagCell renders a regression flag.
func flagCell(c colorizer, r *trend.Regression) string {
	if r == nil {
		return ""
	}
	return c.red(fmt.Sprintf("⚠ %+.1f%% %s", r.DeltaPct, r.Metric))
}

// renderTerm writes the full terminal report for the model.
func renderTerm(w io.Writer, m *trend.Model, c colorizer) {
	src := m.Corpus
	fmt.Fprintf(w, "%s\n", c.bold("fingerstat — bench-trend & run-record observability"))
	fmt.Fprintf(w, "sources: %d run log(s) / %d record(s), %d bench report(s) / %d cell(s), %d skip(s)\n",
		src.RunFiles, src.Records, src.BenchFiles, len(src.Bench), len(src.Skips))
	fmt.Fprintf(w, "window %d, regression flag: >%.0f%% beyond ±1σ of the preceding window\n\n",
		m.Window, m.MaxRegressPct)

	if len(m.Series) > 0 {
		fmt.Fprintln(w, c.bold("RUN-RECORD TRENDS (cycles, cycles/sec, breakdown c/s/o/i %)"))
		fmt.Fprintf(w, "%-10s %-6s %-8s %3s  %12s %7s  %-*s  %8s  %-*s  %-12s %s\n",
			"ARCH", "GRAPH", "PATTERN", "N", "CYCLES", "Δ%", sparkWidth, "TREND",
			"CYC/SEC", sparkWidth, "TREND", "BREAKDOWN", "FLAG")
		for _, s := range m.Series {
			n := len(s.Points)
			last := s.Points[n-1]
			cyc := make([]float64, n)
			cps := make([]float64, n)
			for i, p := range s.Points {
				cyc[i] = float64(p.Cycles)
				cps[i] = p.CyclesPerSec
			}
			delta := "-"
			if n > 1 && s.Roll[n-2].MeanCycles > 0 {
				delta = fmt.Sprintf("%+.1f", (float64(last.Cycles)-s.Roll[n-2].MeanCycles)/s.Roll[n-2].MeanCycles*100)
			}
			partial := ""
			if last.Partial {
				partial = c.dim(" [partial]")
			}
			fmt.Fprintf(w, "%-10s %-6s %-8s %3d  %12d %7s  %-*s  %8s  %-*s  %-12s %s%s\n",
				s.Key.Arch, s.Key.Graph, s.Key.Pattern, n,
				last.Cycles, delta, sparkWidth, spark(cyc),
				siFloat(last.CyclesPerSec), sparkWidth, spark(cps),
				fracCell(last.Frac), flagCell(c, s.Flag), partial)
		}
		fmt.Fprintln(w)
	}

	if len(m.Bench) > 0 {
		fmt.Fprintln(w, c.bold("SIMBENCH TRENDS (serial simulated cycles/sec)"))
		fmt.Fprintf(w, "%-6s %-8s %3s  %10s %18s  %-*s  %7s %7s %9s %9s  %s\n",
			"GRAPH", "PATTERN", "N", "CPS", "MEAN±σ", sparkWidth, "TREND", "SPEEDUP", "DIV%", "SHARD", "HYB", "FLAG")
		for _, b := range m.Bench {
			n := len(b.Points)
			last := b.Points[n-1]
			roll := b.Roll[n-1]
			cps := make([]float64, n)
			for i, p := range b.Points {
				cps[i] = p.SerialCPS
			}
			// Shard column: the newest point's sharded speedup and shard
			// count (simbench v3); pre-v3 reports leave it blank.
			shard := "-"
			if last.Shards > 1 && last.ShardSpeedup > 0 {
				shard = fmt.Sprintf("%.2fx/%d", last.ShardSpeedup, last.Shards)
			}
			// Hybrid column: the newest point's adaptive set-storage
			// footprint (simbench v4); pre-v4 reports leave it blank.
			hyb := "-"
			if last.HybridBytes > 0 {
				hyb = siFloat(float64(last.HybridBytes)) + "B"
			}
			fmt.Fprintf(w, "%-6s %-8s %3d  %10s %18s  %-*s  %6.2fx %7.3f %9s %9s  %s\n",
				b.Graph, b.Pattern, n, siFloat(last.SerialCPS),
				fmt.Sprintf("%s±%s", siFloat(roll.MeanCPS), siFloat(roll.SigmaCPS)),
				sparkWidth, spark(cps), last.Speedup, last.DivergencePct, shard, hyb,
				flagCell(c, b.Flag))
		}
		fmt.Fprintln(w)
	}

	if len(src.Skips) > 0 {
		fmt.Fprintln(w, c.bold("SKIPPED"))
		for _, sk := range src.Skips {
			loc := sk.File
			if sk.Line > 0 {
				loc = fmt.Sprintf("%s:%d", sk.File, sk.Line)
			}
			fmt.Fprintf(w, "  %s\n", c.dim(fmt.Sprintf("%s — %s", loc, sk.Reason)))
		}
		fmt.Fprintln(w)
	}

	if n := m.Regressions(); n > 0 {
		fmt.Fprintf(w, "%s\n", c.red(fmt.Sprintf("%d flagged regression(s)", n)))
	} else {
		fmt.Fprintln(w, "no flagged regressions")
	}
}
