// Static HTML renderer: a self-contained page (inline CSS + SVG, no
// external assets, no scripts) fit for a CI artifact. Charts follow
// the repo's chart conventions: categorical series colors in fixed
// order, a single hue with a ±1σ band for magnitude-over-time, a
// blue↔red diverging scale with a neutral midpoint for the bench heat
// table, status-red regression flags always paired with an icon and
// text, and native <title> tooltips on hover targets.

package main

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"fingers/internal/trend"
)

// Chart geometry.
const (
	chartW     = 560
	chartH     = 120
	stackH     = 90
	chartPad   = 6
	chartPadB  = 4
	labelSpace = 52 // right gutter for min/max labels
)

// Breakdown bucket colors: categorical slots 1–4 (blue, orange, aqua,
// yellow) in the validated adjacent order; light/dark variants are
// swapped by CSS custom properties.
var bucketNames = [4]string{"compute", "stall", "overhead", "idle"}

const pageCSS = `
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #73726e;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a; --series-4: #eda100;
  --status-critical: #d03b3b;
  --pos: 42,120,214; --neg: 208,59,59;
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  margin: 0 auto; max-width: 960px; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8f8e88;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70; --series-4: #c98500;
    --pos: 57,135,229; --neg: 230,103,103;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; border-bottom: 1px solid var(--surface-2); padding-bottom: 4px; }
h3 { font-size: 14px; margin: 0 0 6px; font-weight: 600; }
.meta, .src { color: var(--text-secondary); margin: 0 0 4px; }
.card { border: 1px solid var(--surface-2); border-radius: 8px; padding: 12px 14px; margin: 0 0 14px; }
.flag { color: var(--status-critical); font-weight: 600; }
.ok { color: var(--text-secondary); }
.legend { display: flex; gap: 14px; margin: 4px 0 0; color: var(--text-secondary); font-size: 12px; flex-wrap: wrap; }
.legend .sw { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
figure { margin: 8px 0 0; }
figcaption { color: var(--text-muted); font-size: 12px; margin-bottom: 2px; }
table { border-collapse: collapse; font-size: 13px; }
th, td { padding: 3px 10px; text-align: right; border-bottom: 1px solid var(--surface-2); }
th { color: var(--text-secondary); font-weight: 600; }
th.rowh, td.rowh { text-align: left; }
.heat td.v { min-width: 64px; }
.skips { color: var(--text-muted); font-size: 12px; }
svg text { fill: var(--text-muted); font: 10px system-ui, sans-serif; }
`

// fmtSI mirrors the terminal SI formatter for chart labels.
func fmtSI(v float64) string { return siFloat(v) }

// xAt maps point index i of n onto the chart's inner x span.
func xAt(i, n int) float64 {
	if n <= 1 {
		return chartPad
	}
	return chartPad + float64(i)/float64(n-1)*float64(chartW-chartPad-labelSpace)
}

// yAt maps v within [lo,hi] onto the chart's inner y span (inverted).
func yAt(v, lo, hi float64, h int) float64 {
	if hi <= lo {
		return float64(h) / 2
	}
	return chartPad + (1-(v-lo)/(hi-lo))*float64(h-chartPad-chartPadB)
}

// svgLineChart draws one metric over point index: an optional ±1σ
// rolling band under a 2px line, ≥12px invisible hover targets with
// native <title> tooltips, and min/max labels in the right gutter.
// Zero values are gaps, not points.
func svgLineChart(sb *strings.Builder, vs []float64, roll []trend.Roll, cps bool, labels []string) {
	lo, hi := math.Inf(1), math.Inf(-1)
	sel := func(r trend.Roll) (mean, sigma float64) {
		if cps {
			return r.MeanCPS, r.SigmaCPS
		}
		return r.MeanCycles, r.SigmaCycles
	}
	for i, v := range vs {
		if v > 0 {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if roll != nil {
			if m, s := sel(roll[i]); m > 0 {
				lo, hi = math.Min(lo, m-s), math.Max(hi, m+s)
			}
		}
	}
	if math.IsInf(lo, 1) {
		return
	}
	fmt.Fprintf(sb, `<svg role="img" viewBox="0 0 %d %d" width="%d" height="%d">`, chartW, chartH, chartW, chartH)
	n := len(vs)
	// ±1σ band: top edge mean+σ forward, bottom edge mean−σ backward.
	if roll != nil && n > 1 {
		var top, bot []string
		for i := 0; i < n; i++ {
			m, s := sel(roll[i])
			if m <= 0 {
				continue
			}
			top = append(top, fmt.Sprintf("%.1f,%.1f", xAt(i, n), yAt(m+s, lo, hi, chartH)))
			bot = append(bot, fmt.Sprintf("%.1f,%.1f", xAt(i, n), yAt(m-s, lo, hi, chartH)))
		}
		if len(top) > 1 {
			for i, j := 0, len(bot)-1; i < j; i, j = i+1, j-1 {
				bot[i], bot[j] = bot[j], bot[i]
			}
			fmt.Fprintf(sb, `<polygon points="%s %s" fill="var(--series-1)" opacity="0.15"/>`,
				strings.Join(top, " "), strings.Join(bot, " "))
		}
	}
	// Data line: split into segments at gaps (zero values).
	var seg []string
	flush := func() {
		if len(seg) > 1 {
			fmt.Fprintf(sb, `<polyline points="%s" fill="none" stroke="var(--series-1)" stroke-width="2" stroke-linejoin="round"/>`,
				strings.Join(seg, " "))
		} else if len(seg) == 1 {
			fmt.Fprintf(sb, `<circle cx="%s" r="3" fill="var(--series-1)"/>`,
				strings.Replace(seg[0], ",", `" cy="`, 1))
		}
		seg = seg[:0]
	}
	for i, v := range vs {
		if v == 0 {
			flush()
			continue
		}
		seg = append(seg, fmt.Sprintf("%.1f,%.1f", xAt(i, n), yAt(v, lo, hi, chartH)))
	}
	flush()
	// Hover targets with native tooltips.
	for i, v := range vs {
		if v == 0 {
			continue
		}
		fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="7" fill="transparent"><title>%s</title></circle>`,
			xAt(i, n), yAt(v, lo, hi, chartH), html.EscapeString(labels[i]))
	}
	fmt.Fprintf(sb, `<text x="%d" y="%.1f">%s</text>`, chartW-labelSpace+4, yAt(hi, lo, hi, chartH)+4, fmtSI(hi))
	fmt.Fprintf(sb, `<text x="%d" y="%.1f">%s</text>`, chartW-labelSpace+4, yAt(lo, lo, hi, chartH)+4, fmtSI(lo))
	sb.WriteString(`</svg>`)
}

// svgStacked draws the breakdown-bucket evolution as stacked areas
// (fractions of makespan, fixed bucket order, 1px surface seams).
func svgStacked(sb *strings.Builder, fracs []trend.BreakdownFrac, labels []string) {
	n := len(fracs)
	if n == 0 {
		return
	}
	fmt.Fprintf(sb, `<svg role="img" viewBox="0 0 %d %d" width="%d" height="%d">`, chartW, stackH, chartW, stackH)
	cum := make([][5]float64, n) // cumulative bucket tops per point
	for i, f := range fracs {
		vals := [4]float64{f.Compute, f.Stall, f.Overhead, f.Idle}
		run := 0.0
		for b, v := range vals {
			run += v
			cum[i][b+1] = run
		}
	}
	for b := 0; b < 4; b++ {
		var top, bot []string
		for i := 0; i < n; i++ {
			x := xAt(i, n)
			top = append(top, fmt.Sprintf("%.1f,%.1f", x, yAt(cum[i][b+1], 0, 1, stackH)))
			bot = append(bot, fmt.Sprintf("%.1f,%.1f", x, yAt(cum[i][b], 0, 1, stackH)))
		}
		for i, j := 0, len(bot)-1; i < j; i, j = i+1, j-1 {
			bot[i], bot[j] = bot[j], bot[i]
		}
		fmt.Fprintf(sb, `<polygon points="%s %s" fill="var(--series-%d)" stroke="var(--surface-1)" stroke-width="1"/>`,
			strings.Join(top, " "), strings.Join(bot, " "), b+1)
	}
	// Hover targets spanning each point's full column.
	colW := float64(chartW-chartPad-labelSpace) / math.Max(float64(n-1), 1)
	for i := 0; i < n; i++ {
		fmt.Fprintf(sb, `<rect x="%.1f" y="0" width="%.1f" height="%d" fill="transparent"><title>%s</title></rect>`,
			xAt(i, n)-colW/2, colW, stackH, html.EscapeString(labels[i]))
	}
	sb.WriteString(`</svg>`)
	sb.WriteString(`<div class="legend">`)
	for b, name := range bucketNames {
		fmt.Fprintf(sb, `<span><span class="sw" style="background:var(--series-%d)"></span>%s</span>`, b+1, name)
	}
	sb.WriteString(`</div>`)
}

// heatCell renders one bench heat-table cell: serial cycles/sec with a
// diverging background (blue = faster than the prior rolling mean,
// red = slower, neutral at no change) and the value always in text.
func heatCell(sb *strings.Builder, bp trend.BenchPoint, deltaPct float64, first bool) {
	styleVar, alpha := "--pos", 0.0
	if !first {
		if deltaPct < 0 {
			styleVar = "--neg"
		}
		alpha = math.Min(math.Abs(deltaPct)/25, 1) * 0.45
	}
	title := fmt.Sprintf("%s/%s %s: %s cycles/sec", bp.Graph, bp.Pattern, bp.At.Format("2006-01-02"), fmtSI(bp.SerialCPS))
	delta := ""
	if !first {
		delta = fmt.Sprintf(" <span style=\"color:var(--text-muted)\">%+.1f%%</span>", deltaPct)
	}
	fmt.Fprintf(sb, `<td class="v" style="background:rgba(var(%s),%.2f)" title="%s">%s%s</td>`,
		styleVar, alpha, html.EscapeString(title), fmtSI(bp.SerialCPS), delta)
}

// renderHTML writes the whole report. generatedAt is stamped verbatim
// (empty in golden tests for reproducibility).
func renderHTML(w io.Writer, m *trend.Model, generatedAt string) error {
	var sb strings.Builder
	src := m.Corpus
	sb.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	sb.WriteString("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	sb.WriteString("<title>fingerstat — trend report</title>\n<style>" + pageCSS + "</style>\n</head>\n")
	sb.WriteString("<body class=\"viz-root\">\n")
	sb.WriteString("<h1>fingerstat — bench-trend &amp; run-record report</h1>\n")
	if generatedAt != "" {
		fmt.Fprintf(&sb, "<p class=\"meta\">generated %s</p>\n", html.EscapeString(generatedAt))
	}
	fmt.Fprintf(&sb, "<p class=\"src\">sources: %d run log(s) / %d record(s), %d bench report(s) / %d cell(s), %d skip(s) · window %d · flag &gt;%.0f%% beyond ±1σ</p>\n",
		src.RunFiles, src.Records, src.BenchFiles, len(src.Bench), len(src.Skips), m.Window, m.MaxRegressPct)
	if n := m.Regressions(); n > 0 {
		fmt.Fprintf(&sb, "<p class=\"flag\">⚠ %d flagged regression(s)</p>\n", n)
	} else {
		sb.WriteString("<p class=\"ok\">no flagged regressions</p>\n")
	}

	if len(m.Series) > 0 {
		sb.WriteString("<h2>Run-record trends</h2>\n")
		for _, s := range m.Series {
			n := len(s.Points)
			last := s.Points[n-1]
			fmt.Fprintf(&sb, "<div class=\"card\">\n<h3>%s · %s · %s</h3>\n",
				html.EscapeString(s.Key.Arch), html.EscapeString(s.Key.Graph), html.EscapeString(s.Key.Pattern))
			fmt.Fprintf(&sb, "<p class=\"meta\">%d point(s), latest %d cycles", n, last.Cycles)
			if last.CyclesPerSec > 0 {
				fmt.Fprintf(&sb, " at %s cycles/sec", fmtSI(last.CyclesPerSec))
			}
			if last.MissRate > 0 {
				fmt.Fprintf(&sb, ", shared miss rate %.1f%%", 100*last.MissRate)
			}
			if last.DRAMBytes > 0 {
				fmt.Fprintf(&sb, ", DRAM %s B", fmtSI(float64(last.DRAMBytes)))
			}
			sb.WriteString("</p>\n")
			if s.Flag != nil {
				fmt.Fprintf(&sb, "<p class=\"flag\">⚠ regression: %s %+.1f%% vs rolling mean %s (σ %s)</p>\n",
					html.EscapeString(s.Flag.Metric), s.Flag.DeltaPct, fmtSI(s.Flag.Baseline), fmtSI(s.Flag.Sigma))
			}

			cps, cyc := make([]float64, n), make([]float64, n)
			labels := make([]string, n)
			anyCPS := false
			for i, p := range s.Points {
				cps[i], cyc[i] = p.CyclesPerSec, float64(p.Cycles)
				if p.CyclesPerSec > 0 {
					anyCPS = true
				}
				when := "no timestamp"
				if !p.At.IsZero() {
					when = p.At.Format("2006-01-02 15:04")
					if p.FromMTime {
						when += " (mtime)"
					}
				}
				labels[i] = fmt.Sprintf("%s — %d cycles, %s cycles/sec", when, p.Cycles, fmtSI(p.CyclesPerSec))
			}
			if anyCPS {
				sb.WriteString("<figure>\n<figcaption>cycles/sec (line) with rolling mean ±1σ (band), oldest → newest</figcaption>\n")
				svgLineChart(&sb, cps, s.Roll, true, labels)
			} else {
				sb.WriteString("<figure>\n<figcaption>simulated cycles with rolling mean ±1σ (band), oldest → newest</figcaption>\n")
				svgLineChart(&sb, cyc, s.Roll, false, labels)
			}
			sb.WriteString("\n</figure>\n")

			fracs := make([]trend.BreakdownFrac, n)
			haveFrac := false
			for i, p := range s.Points {
				fracs[i] = p.Frac
				if !p.Frac.Zero() {
					haveFrac = true
				}
				labels[i] = fmt.Sprintf("compute %.0f%% · stall %.0f%% · overhead %.0f%% · idle %.0f%%",
					100*p.Frac.Compute, 100*p.Frac.Stall, 100*p.Frac.Overhead, 100*p.Frac.Idle)
			}
			if haveFrac {
				sb.WriteString("<figure>\n<figcaption>cycle-breakdown evolution (fractions of makespan)</figcaption>\n")
				svgStacked(&sb, fracs, labels)
				sb.WriteString("\n</figure>\n")
			}
			sb.WriteString("</div>\n")
		}
	}

	if len(m.Bench) > 0 {
		sb.WriteString("<h2>Simbench trends</h2>\n")
		maxCols := 0
		for _, b := range m.Bench {
			if len(b.Points) > maxCols {
				maxCols = len(b.Points)
			}
		}
		sb.WriteString("<div class=\"card\">\n<h3>serial simulated cycles/sec per cell</h3>\n")
		sb.WriteString("<p class=\"meta\">each column is one report, oldest → newest; cell shading is the change vs the preceding rolling mean (blue faster, red slower)</p>\n")
		sb.WriteString("<table class=\"heat\">\n<tr><th class=\"rowh\">cell</th>")
		for i := 0; i < maxCols; i++ {
			fmt.Fprintf(&sb, "<th>#%d</th>", i+1)
		}
		sb.WriteString("<th class=\"rowh\">flag</th></tr>\n")
		for _, b := range m.Bench {
			fmt.Fprintf(&sb, "<tr><td class=\"rowh\">%s/%s</td>", html.EscapeString(b.Graph), html.EscapeString(b.Pattern))
			for i := 0; i < maxCols; i++ {
				if i >= len(b.Points) {
					sb.WriteString("<td></td>")
					continue
				}
				delta := 0.0
				if i > 0 && b.Roll[i-1].MeanCPS > 0 {
					delta = (b.Points[i].SerialCPS - b.Roll[i-1].MeanCPS) / b.Roll[i-1].MeanCPS * 100
				}
				heatCell(&sb, b.Points[i], delta, i == 0)
			}
			if b.Flag != nil {
				fmt.Fprintf(&sb, "<td class=\"rowh flag\">⚠ %+.1f%%</td>", b.Flag.DeltaPct)
			} else {
				sb.WriteString("<td class=\"rowh ok\">ok</td>")
			}
			sb.WriteString("</tr>\n")
		}
		sb.WriteString("</table>\n</div>\n")
	}

	if len(src.Skips) > 0 {
		sb.WriteString("<h2>Skipped inputs</h2>\n<ul class=\"skips\">\n")
		for _, sk := range src.Skips {
			loc := sk.File
			if sk.Line > 0 {
				loc = fmt.Sprintf("%s:%d", sk.File, sk.Line)
			}
			fmt.Fprintf(&sb, "<li>%s — %s</li>\n", html.EscapeString(loc), html.EscapeString(sk.Reason))
		}
		sb.WriteString("</ul>\n")
	}
	sb.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
