// Command fingersim simulates one graph-mining workload on the FINGERS
// accelerator, the FlexMiner baseline, or both, and reports cycles,
// counts, memory statistics, IU utilization, and the per-PE cycle
// breakdown (compute / memory stall / overhead / idle).
//
// Usage:
//
//	fingersim -graph Lj -pattern tt -arch both -pes 20
//	fingersim -graph path/to/edges.txt -pattern 4cl -arch fingers -ius 48
//	fingersim -graph Mi -pattern tt -arch both -trace /tmp/t.json -json /tmp/r.jsonl
//
// -trace writes a Chrome trace_event file (open at ui.perfetto.dev, one
// track per PE); -json appends one machine-readable run record per
// simulated architecture; -progress N prints a live status line every N
// scheduler steps for long runs.
//
// SIGINT or SIGTERM cancels the simulation gracefully: the run stops
// within one cancellation quantum, the partial results (cycles reached,
// counts so far, dispatched roots) are printed and flushed to -json and
// -trace with the record's partial flag set, and the process exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/exp"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// main delegates to realMain so deferred cleanup (profiles, the JSONL
// run log, the Chrome trace) runs before the process exits — including
// on signal-driven cancellation, which os.Exit inside the body would
// skip.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	graphArg := flag.String("graph", "Mi", "dataset mnemonic (As/Mi/Yo/Pa/Lj/Or) or edge-list path")
	patternArg := flag.String("pattern", "tc", "benchmark pattern (tc/4cl/5cl/tt/cyc/dia/3mc or any named pattern)")
	arch := flag.String("arch", "both", "fingers, flexminer, or both")
	pes := flag.Int("pes", 1, "number of PEs")
	ius := flag.Int("ius", 24, "IUs per FINGERS PE")
	isoArea := flag.Bool("iso-area", true, "shrink segment length as IUs grow (#IUs × s_l const)")
	cacheKB := flag.Int64("cache-kb", datasets.ScaledSharedCacheBytes>>10, "shared cache capacity (kB)")
	pseudoDFS := flag.Bool("pseudo-dfs", true, "enable pseudo-DFS task grouping")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON here (view at ui.perfetto.dev)")
	jsonOut := flag.String("json", "", "append one JSONL run record per simulated architecture here")
	runTag := flag.String("run-tag", "", "tag stamped into -json records so trend tooling can group this session")
	progressEvery := flag.Int64("progress", 0, "print a progress line to stderr every N scheduler steps (0 = off)")
	simWorkers := flag.Int("sim-workers", 0, "run the chip on the parallel engine with this many host threads (0 = serial event loop)")
	simWindow := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ in simulated cycles (results depend only on this; 1 = cycle-exact)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here")
	memProfile := flag.String("memprofile", "", "write a heap profile here on exit")
	flag.Parse()

	switch *arch {
	case "fingers", "flexminer", "both":
	default:
		return fail(fmt.Errorf("unknown -arch %q (valid values: fingers, flexminer, both)", *arch))
	}
	var pcfg *accel.ParallelConfig
	if *simWorkers > 0 {
		pcfg = &accel.ParallelConfig{Window: mem.Cycles(*simWindow), Workers: *simWorkers}
		if err := pcfg.Validate(); err != nil {
			return fail(err)
		}
	}

	// SIGINT/SIGTERM cancels the in-flight simulation; the partial
	// results are still printed and flushed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fingersim:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fingersim:", err)
			}
		}()
	}

	g, err := loadGraph(*graphArg)
	if err != nil {
		return fail(err)
	}
	plans, err := exp.PlansFor(*patternArg)
	if err != nil {
		return fail(err)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	fmt.Printf("pattern: %s (%d plan(s))\n", *patternArg, len(plans))

	var chrome *telemetry.Chrome
	if *traceOut != "" {
		chrome = telemetry.NewChrome()
	}
	var runLog *telemetry.RunLog
	if *jsonOut != "" {
		runLog, err = telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			return fail(err)
		}
		defer runLog.Close()
		meta := telemetry.HostMeta()
		meta.RunTag = *runTag
		runLog.SetMeta(meta)
	}

	code := 0
	cache := *cacheKB << 10
	if *arch == "fingers" || *arch == "both" {
		cfg := fingerspe.DefaultConfig()
		if *isoArea {
			cfg = cfg.WithIUs(*ius)
		} else {
			cfg = cfg.WithIUsUnlimited(*ius)
		}
		cfg.PseudoDFS = *pseudoDFS
		sched := accel.NewRootScheduler(g.NumVertices())
		chip := fingerspe.NewChipWithScheduler(cfg, *pes, cache, g, plans, sched)
		if chrome != nil {
			chrome.StartProcess("FINGERS")
			chip.SetTracer(chrome)
		}
		fn := progressFunc("FINGERS", *progressEvery, sched, chip.Hier, func() (tasks int64) {
			for _, pe := range chip.PEs {
				tasks += pe.Tasks()
			}
			return tasks
		})
		start := time.Now()
		res, runErr := runChip(ctx, pcfg, *progressEvery, fn, chip.RunCtxWithProgress, chip.RunParallelCtxWithProgress)
		wall := time.Since(start)
		code = reportRunErr(code, runErr)
		iu := chip.AggregateStats()
		fmt.Printf("FINGERS   %2d PEs × %2d IUs (s_l=%d): %s%s\n", *pes, cfg.NumIUs, cfg.LongSegLen, res, partialMark(runErr))
		fmt.Printf("          IU active %.1f%%, balance %.1f%%\n", 100*iu.ActiveRate(), 100*iu.BalanceRate())
		fmt.Printf("          breakdown: %s\n", res.Breakdown)
		fmt.Printf("          roots dispatched: %d/%d\n", chip.RootsDispatched(), chip.RootsTotal())
		if runLog != nil {
			rec := exp.NewRunRecord("fingers", "fingersim", *graphArg, *patternArg, *pes, cfg.NumIUs, cache, g, res, chip.PERecords())
			rec.Partial = runErr != nil
			rec.StartedAt = start.UTC().Format(time.RFC3339Nano)
			rec.WallNS = wall.Nanoseconds()
			rec.IUActiveRate = iu.ActiveRate()
			rec.IUBalanceRate = iu.BalanceRate()
			if err := runLog.Write(rec); err != nil {
				code = reportRunErr(code, err)
			}
		}
	}
	if (*arch == "flexminer" || *arch == "both") && code == 0 {
		sched := accel.NewRootScheduler(g.NumVertices())
		chip := flexminer.NewChipWithScheduler(flexminer.DefaultConfig(), *pes, cache, g, plans, sched)
		if chrome != nil {
			chrome.StartProcess("FlexMiner")
			chip.SetTracer(chrome)
		}
		fn := progressFunc("FlexMiner", *progressEvery, sched, chip.Hier, func() (tasks int64) {
			for _, pe := range chip.PEs {
				tasks += pe.Tasks()
			}
			return tasks
		})
		start := time.Now()
		res, runErr := runChip(ctx, pcfg, *progressEvery, fn, chip.RunCtxWithProgress, chip.RunParallelCtxWithProgress)
		wall := time.Since(start)
		code = reportRunErr(code, runErr)
		fmt.Printf("FlexMiner %2d PEs: %s%s\n", *pes, res, partialMark(runErr))
		fmt.Printf("          breakdown: %s\n", res.Breakdown)
		fmt.Printf("          roots dispatched: %d/%d\n", chip.RootsDispatched(), chip.RootsTotal())
		if runLog != nil {
			rec := exp.NewRunRecord("flexminer", "fingersim", *graphArg, *patternArg, *pes, 0, cache, g, res, chip.PERecords())
			rec.Partial = runErr != nil
			rec.StartedAt = start.UTC().Format(time.RFC3339Nano)
			rec.WallNS = wall.Nanoseconds()
			if err := runLog.Write(rec); err != nil {
				code = reportRunErr(code, err)
			}
		}
	}
	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return failCode(code, err)
		}
		if _, err := chrome.WriteTo(f); err != nil {
			f.Close()
			return failCode(code, err)
		}
		if err := f.Close(); err != nil {
			return failCode(code, err)
		}
		fmt.Printf("trace: %d events -> %s (open at ui.perfetto.dev)\n", len(chrome.Events()), *traceOut)
	}
	return code
}

// runChip runs one chip on the selected engine — the serial event loop,
// or with -sim-workers the bounded-lag parallel engine — under the
// signal-cancelled context. On cancellation or a recovered simulation
// panic it returns the partial result alongside the *simerr.SimError.
func runChip(ctx context.Context, pcfg *accel.ParallelConfig, every int64, fn func(accel.Progress),
	serial func(context.Context, int64, func(accel.Progress)) (accel.Result, error),
	parallel func(context.Context, accel.ParallelConfig, int64, func(accel.Progress)) (accel.Result, error)) (accel.Result, error) {
	if pcfg == nil {
		return serial(ctx, every, fn)
	}
	return parallel(ctx, *pcfg, every, fn)
}

// reportRunErr folds one run error into the exit code: 130 for a
// signal-driven cancellation (the shell convention for SIGINT), 1 for
// anything else, keeping the first nonzero code.
func reportRunErr(code int, err error) int {
	if err == nil {
		return code
	}
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	next := 1
	if se, ok := simerr.As(err); ok && se.IsCancellation() {
		next = 130
	}
	if code != 0 {
		return code
	}
	return next
}

// partialMark annotates a result line whose run was cut short.
func partialMark(err error) string {
	if err != nil {
		return "  [partial]"
	}
	return ""
}

// failCode reports err and returns the first nonzero exit code.
func failCode(code int, err error) int {
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	if code != 0 {
		return code
	}
	return 1
}

// progressFunc builds the periodic status-line callback: simulated time,
// PEs still active, roots remaining, and the live shared-cache MPKI
// (line misses per thousand extension tasks — the per-task analogue of
// misses per kilo-instruction). Returns nil when progress is disabled.
func progressFunc(label string, every int64, sched *accel.RootScheduler, hier *mem.Hierarchy, tasksFn func() int64) func(accel.Progress) {
	if every <= 0 {
		return nil
	}
	return func(p accel.Progress) {
		cs := hier.Shared.Stats()
		mpki := 0.0
		if tasks := tasksFn(); tasks > 0 {
			mpki = 1000 * float64(cs.LineMisses) / float64(tasks)
		}
		fmt.Fprintf(os.Stderr, "%s: steps=%d t=%dcy active-pes=%d roots-remaining=%d shared-MPKI=%.1f\n",
			label, p.Steps, p.Now, p.Active, sched.Remaining(), mpki)
	}
}

func loadGraph(arg string) (*graph.Graph, error) {
	if d, err := datasets.ByName(arg); err == nil {
		return d.Graph(), nil
	}
	return graph.LoadFile(arg)
}

// fail reports err and returns exit code 1 (flag/input errors, before
// any simulation state exists).
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	return 1
}
