// Command fingersim simulates one graph-mining workload on the FINGERS
// accelerator, the FlexMiner baseline, or both, and reports cycles,
// counts, memory statistics, IU utilization, and the per-PE cycle
// breakdown (compute / memory stall / overhead / idle).
//
// Usage:
//
//	fingersim -graph Lj -pattern tt -arch both -pes 20
//	fingersim -graph path/to/edges.txt -pattern 4cl -arch fingers -ius 48
//	fingersim -graph Mi -pattern tt -arch both -trace /tmp/t.json -json /tmp/r.jsonl
//
// -trace writes a Chrome trace_event file (open at ui.perfetto.dev, one
// track per PE); -json appends one machine-readable run record per
// simulated architecture; -progress N prints a live status line every N
// scheduler steps for long runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/exp"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/telemetry"
)

func main() {
	graphArg := flag.String("graph", "Mi", "dataset mnemonic (As/Mi/Yo/Pa/Lj/Or) or edge-list path")
	patternArg := flag.String("pattern", "tc", "benchmark pattern (tc/4cl/5cl/tt/cyc/dia/3mc or any named pattern)")
	arch := flag.String("arch", "both", "fingers, flexminer, or both")
	pes := flag.Int("pes", 1, "number of PEs")
	ius := flag.Int("ius", 24, "IUs per FINGERS PE")
	isoArea := flag.Bool("iso-area", true, "shrink segment length as IUs grow (#IUs × s_l const)")
	cacheKB := flag.Int64("cache-kb", datasets.ScaledSharedCacheBytes>>10, "shared cache capacity (kB)")
	pseudoDFS := flag.Bool("pseudo-dfs", true, "enable pseudo-DFS task grouping")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON here (view at ui.perfetto.dev)")
	jsonOut := flag.String("json", "", "append one JSONL run record per simulated architecture here")
	progressEvery := flag.Int64("progress", 0, "print a progress line to stderr every N scheduler steps (0 = off)")
	simWorkers := flag.Int("sim-workers", 0, "run the chip on the parallel engine with this many host threads (0 = serial event loop)")
	simWindow := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ in simulated cycles (results depend only on this; 1 = cycle-exact)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here")
	memProfile := flag.String("memprofile", "", "write a heap profile here on exit")
	flag.Parse()

	switch *arch {
	case "fingers", "flexminer", "both":
	default:
		fatal(fmt.Errorf("unknown -arch %q (valid values: fingers, flexminer, both)", *arch))
	}
	var pcfg *accel.ParallelConfig
	if *simWorkers > 0 {
		pcfg = &accel.ParallelConfig{Window: mem.Cycles(*simWindow), Workers: *simWorkers}
		if err := pcfg.Validate(); err != nil {
			fatal(err)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	g, err := loadGraph(*graphArg)
	if err != nil {
		fatal(err)
	}
	plans, err := exp.PlansFor(*patternArg)
	if err != nil {
		fatal(err)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	fmt.Printf("pattern: %s (%d plan(s))\n", *patternArg, len(plans))

	var chrome *telemetry.Chrome
	if *traceOut != "" {
		chrome = telemetry.NewChrome()
	}
	var runLog *telemetry.RunLog
	if *jsonOut != "" {
		runLog, err = telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer runLog.Close()
	}

	cache := *cacheKB << 10
	if *arch == "fingers" || *arch == "both" {
		cfg := fingerspe.DefaultConfig()
		if *isoArea {
			cfg = cfg.WithIUs(*ius)
		} else {
			cfg = cfg.WithIUsUnlimited(*ius)
		}
		cfg.PseudoDFS = *pseudoDFS
		sched := accel.NewRootScheduler(g.NumVertices())
		chip := fingerspe.NewChipWithScheduler(cfg, *pes, cache, g, plans, sched)
		if chrome != nil {
			chrome.StartProcess("FINGERS")
			chip.SetTracer(chrome)
		}
		fn := progressFunc("FINGERS", *progressEvery, sched, chip.Hier, func() (tasks int64) {
			for _, pe := range chip.PEs {
				tasks += pe.Tasks()
			}
			return tasks
		})
		res := runChip(pcfg, *progressEvery, fn, chip.RunWithProgress, chip.RunParallelWithProgress)
		iu := chip.AggregateStats()
		fmt.Printf("FINGERS   %2d PEs × %2d IUs (s_l=%d): %s\n", *pes, cfg.NumIUs, cfg.LongSegLen, res)
		fmt.Printf("          IU active %.1f%%, balance %.1f%%\n", 100*iu.ActiveRate(), 100*iu.BalanceRate())
		fmt.Printf("          breakdown: %s\n", res.Breakdown)
		if runLog != nil {
			rec := exp.NewRunRecord("fingers", "fingersim", *graphArg, *patternArg, *pes, cfg.NumIUs, cache, g, res, chip.PERecords())
			rec.IUActiveRate = iu.ActiveRate()
			rec.IUBalanceRate = iu.BalanceRate()
			if err := runLog.Write(rec); err != nil {
				fatal(err)
			}
		}
	}
	if *arch == "flexminer" || *arch == "both" {
		sched := accel.NewRootScheduler(g.NumVertices())
		chip := flexminer.NewChipWithScheduler(flexminer.DefaultConfig(), *pes, cache, g, plans, sched)
		if chrome != nil {
			chrome.StartProcess("FlexMiner")
			chip.SetTracer(chrome)
		}
		fn := progressFunc("FlexMiner", *progressEvery, sched, chip.Hier, func() (tasks int64) {
			for _, pe := range chip.PEs {
				tasks += pe.Tasks()
			}
			return tasks
		})
		res := runChip(pcfg, *progressEvery, fn, chip.RunWithProgress, chip.RunParallelWithProgress)
		fmt.Printf("FlexMiner %2d PEs: %s\n", *pes, res)
		fmt.Printf("          breakdown: %s\n", res.Breakdown)
		if runLog != nil {
			rec := exp.NewRunRecord("flexminer", "fingersim", *graphArg, *patternArg, *pes, 0, cache, g, res, chip.PERecords())
			if err := runLog.Write(rec); err != nil {
				fatal(err)
			}
		}
	}
	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if _, err := chrome.WriteTo(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events -> %s (open at ui.perfetto.dev)\n", len(chrome.Events()), *traceOut)
	}
}

// runChip runs one chip on the selected engine: the serial event loop,
// or — when -sim-workers is set — the bounded-lag parallel engine.
func runChip(pcfg *accel.ParallelConfig, every int64, fn func(accel.Progress),
	serial func(int64, func(accel.Progress)) accel.Result,
	parallel func(accel.ParallelConfig, int64, func(accel.Progress)) (accel.Result, error)) accel.Result {
	if pcfg == nil {
		return serial(every, fn)
	}
	res, err := parallel(*pcfg, every, fn)
	if err != nil {
		fatal(err)
	}
	return res
}

// progressFunc builds the periodic status-line callback: simulated time,
// PEs still active, roots remaining, and the live shared-cache MPKI
// (line misses per thousand extension tasks — the per-task analogue of
// misses per kilo-instruction). Returns nil when progress is disabled.
func progressFunc(label string, every int64, sched *accel.RootScheduler, hier *mem.Hierarchy, tasksFn func() int64) func(accel.Progress) {
	if every <= 0 {
		return nil
	}
	return func(p accel.Progress) {
		cs := hier.Shared.Stats()
		mpki := 0.0
		if tasks := tasksFn(); tasks > 0 {
			mpki = 1000 * float64(cs.LineMisses) / float64(tasks)
		}
		fmt.Fprintf(os.Stderr, "%s: steps=%d t=%dcy active-pes=%d roots-remaining=%d shared-MPKI=%.1f\n",
			label, p.Steps, p.Now, p.Active, sched.Remaining(), mpki)
	}
}

func loadGraph(arg string) (*graph.Graph, error) {
	if d, err := datasets.ByName(arg); err == nil {
		return d.Graph(), nil
	}
	return graph.LoadFile(arg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	os.Exit(1)
}
