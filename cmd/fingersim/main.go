// Command fingersim simulates one graph-mining workload on the FINGERS
// accelerator, the FlexMiner baseline, or both, and reports cycles,
// counts, memory statistics and IU utilization.
//
// Usage:
//
//	fingersim -graph Lj -pattern tt -arch both -pes 20
//	fingersim -graph path/to/edges.txt -pattern 4cl -arch fingers -ius 48
package main

import (
	"flag"
	"fmt"
	"os"

	"fingers/internal/datasets"
	"fingers/internal/exp"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/graph"
)

func main() {
	graphArg := flag.String("graph", "Mi", "dataset mnemonic (As/Mi/Yo/Pa/Lj/Or) or edge-list path")
	patternArg := flag.String("pattern", "tc", "benchmark pattern (tc/4cl/5cl/tt/cyc/dia/3mc or any named pattern)")
	arch := flag.String("arch", "both", "fingers, flexminer, or both")
	pes := flag.Int("pes", 1, "number of PEs")
	ius := flag.Int("ius", 24, "IUs per FINGERS PE")
	isoArea := flag.Bool("iso-area", true, "shrink segment length as IUs grow (#IUs × s_l const)")
	cacheKB := flag.Int64("cache-kb", datasets.ScaledSharedCacheBytes>>10, "shared cache capacity (kB)")
	pseudoDFS := flag.Bool("pseudo-dfs", true, "enable pseudo-DFS task grouping")
	flag.Parse()

	g, err := loadGraph(*graphArg)
	if err != nil {
		fatal(err)
	}
	plans, err := exp.PlansFor(*patternArg)
	if err != nil {
		fatal(err)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	fmt.Printf("pattern: %s (%d plan(s))\n", *patternArg, len(plans))

	cache := *cacheKB << 10
	if *arch == "fingers" || *arch == "both" {
		cfg := fingerspe.DefaultConfig()
		if *isoArea {
			cfg = cfg.WithIUs(*ius)
		} else {
			cfg = cfg.WithIUsUnlimited(*ius)
		}
		cfg.PseudoDFS = *pseudoDFS
		chip := fingerspe.NewChip(cfg, *pes, cache, g, plans)
		res := chip.Run()
		iu := chip.AggregateStats()
		fmt.Printf("FINGERS   %2d PEs × %2d IUs (s_l=%d): %s\n", *pes, cfg.NumIUs, cfg.LongSegLen, res)
		fmt.Printf("          IU active %.1f%%, balance %.1f%%\n", 100*iu.ActiveRate(), 100*iu.BalanceRate())
	}
	if *arch == "flexminer" || *arch == "both" {
		res := flexminer.NewChip(flexminer.DefaultConfig(), *pes, cache, g, plans).Run()
		fmt.Printf("FlexMiner %2d PEs: %s\n", *pes, res)
	}
}

func loadGraph(arg string) (*graph.Graph, error) {
	if d, err := datasets.ByName(arg); err == nil {
		return d.Graph(), nil
	}
	return graph.LoadFile(arg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	os.Exit(1)
}
