// Command fingersim simulates one graph-mining workload on the FINGERS
// accelerator, the FlexMiner baseline, or both, and reports cycles,
// counts, memory statistics, IU utilization, and the per-PE cycle
// breakdown (compute / memory stall / overhead / idle).
//
// Usage:
//
//	fingersim -graph Lj -pattern tt -arch both -pes 20
//	fingersim -graph path/to/edges.txt -pattern 4cl -arch fingers -ius 48
//	fingersim -graph Mi -pattern tt -arch both -trace /tmp/t.json -json /tmp/r.jsonl
//
// The flags populate a fingers.JobSpec — the same serializable job
// description the fingersd daemon accepts over HTTP — and the spec
// drives the Simulate façade, so a CLI invocation and a daemon job with
// equal fields configure the chip identically.
//
// -trace writes a Chrome trace_event file (open at ui.perfetto.dev, one
// track per PE); -json appends one machine-readable run record per
// simulated architecture; -progress N prints a live status line every N
// scheduler steps for long runs.
//
// SIGINT or SIGTERM cancels the simulation gracefully: the run stops
// within one cancellation quantum, the partial results (cycles reached,
// counts so far, dispatched roots) are printed and flushed to -json and
// -trace with the record's partial flag set, and the process exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"fingers"
	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/exp"
	"fingers/internal/graph"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// main delegates to realMain so deferred cleanup (profiles, the JSONL
// run log, the Chrome trace) runs before the process exits — including
// on signal-driven cancellation, which os.Exit inside the body would
// skip.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	graphArg := flag.String("graph", "Mi", "dataset mnemonic (As/Mi/Yo/Pa/Lj/Or) or edge-list path")
	patternArg := flag.String("pattern", "tc", "benchmark pattern (tc/4cl/5cl/tt/cyc/dia/3mc or any named pattern)")
	arch := flag.String("arch", "both", "fingers, flexminer, sisa, both, or all")
	pes := flag.Int("pes", 1, "number of PEs")
	ius := flag.Int("ius", 24, "IUs per FINGERS PE")
	isoArea := flag.Bool("iso-area", true, "shrink segment length as IUs grow (#IUs × s_l const)")
	cacheKB := flag.Int64("cache-kb", datasets.ScaledSharedCacheBytes>>10, "shared cache capacity (kB)")
	pseudoDFS := flag.Bool("pseudo-dfs", true, "enable pseudo-DFS task grouping")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON here (view at ui.perfetto.dev)")
	jsonOut := flag.String("json", "", "append one JSONL run record per simulated architecture here")
	runTag := flag.String("run-tag", "", "tag stamped into -json records so trend tooling can group this session")
	progressEvery := flag.Int64("progress", 0, "print a progress line to stderr every N scheduler steps (0 = off)")
	simWorkers := flag.Int("sim-workers", 0, "run the chip on the parallel engine with this many host threads (0 = serial event loop)")
	simWindow := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ in simulated cycles (results depend only on this; 1 = cycle-exact)")
	simShards := flag.Int("sim-shards", 0, "partition roots across this many independent engine instances on separate OS threads (0/1 = unsharded; clamped to -pes)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile here")
	memProfile := flag.String("memprofile", "", "write a heap profile here on exit")
	flag.Parse()

	// One spec per architecture: -arch both expands into the two specs a
	// daemon client would submit as two jobs.
	var archNames []string
	switch *arch {
	case "fingers", "flexminer", "sisa":
		archNames = []string{*arch}
	case "both":
		archNames = []string{"fingers", "flexminer"}
	case "all":
		archNames = []string{"fingers", "flexminer", "sisa"}
	default:
		return fail(fmt.Errorf("unknown -arch %q (valid values: fingers, flexminer, sisa, both, all)", *arch))
	}
	base := fingers.JobSpec{
		Graph:      *graphArg,
		Pattern:    *patternArg,
		PEs:        *pes,
		IUs:        *ius,
		IsoArea:    isoArea,
		PseudoDFS:  pseudoDFS,
		CacheKB:    *cacheKB,
		SimWorkers: *simWorkers,
		RunTag:     *runTag,
	}
	if *simWorkers > 0 {
		base.SimWindow = *simWindow
	}
	if *simShards > 1 {
		base.SimShards = *simShards
	}

	// SIGINT/SIGTERM cancels the in-flight simulation; the partial
	// results are still printed and flushed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fingersim:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fingersim:", err)
			}
		}()
	}

	base.Arch = archNames[0]
	if err := base.Validate(); err != nil {
		return fail(err)
	}
	g, err := base.ResolveGraph()
	if err != nil {
		return fail(err)
	}
	plans, err := base.Plans()
	if err != nil {
		return fail(err)
	}
	st := graph.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)
	fmt.Printf("pattern: %s (%d plan(s))\n", *patternArg, len(plans))

	var chrome *telemetry.Chrome
	if *traceOut != "" {
		chrome = telemetry.NewChrome()
	}
	var runLog *telemetry.RunLog
	if *jsonOut != "" {
		runLog, err = telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			return fail(err)
		}
		defer runLog.Close()
		meta := telemetry.HostMeta()
		meta.RunTag = *runTag
		meta.Source = "fingersim"
		runLog.SetMeta(meta)
	}

	code := 0
	for _, name := range archNames {
		if code != 0 {
			break
		}
		spec := base
		spec.Arch = name
		code = runArch(ctx, spec, g, plans, chrome, runLog, *progressEvery, code)
	}

	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return failCode(code, err)
		}
		if _, err := chrome.WriteTo(f); err != nil {
			f.Close()
			return failCode(code, err)
		}
		if err := f.Close(); err != nil {
			return failCode(code, err)
		}
		fmt.Printf("trace: %d events -> %s (open at ui.perfetto.dev)\n", len(chrome.Events()), *traceOut)
	}
	return code
}

// runArch simulates one architecture from its spec through the Simulate
// façade, prints the report, and appends the run record.
func runArch(ctx context.Context, spec fingers.JobSpec, g *fingers.Graph, plans []*fingers.Plan,
	chrome *telemetry.Chrome, runLog *telemetry.RunLog, progressEvery int64, code int) int {
	arch, err := spec.ArchValue()
	if err != nil {
		return failCode(code, err)
	}
	opts, err := spec.ToOptions()
	if err != nil {
		return failCode(code, err)
	}
	opts = append(opts, fingers.WithContext(ctx), fingers.WithStats())
	if chrome != nil {
		chrome.StartProcess(arch.String())
		opts = append(opts, fingers.WithTracer(chrome))
	}
	if progressEvery > 0 {
		label := arch.String()
		opts = append(opts, fingers.WithProgress(progressEvery, func(p fingers.SimProgress) {
			fmt.Fprintf(os.Stderr, "%s: steps=%d t=%dcy active-pes=%d\n", label, p.Steps, p.Now, p.Active)
		}))
	}

	start := time.Now()
	rep, runErr := fingers.Simulate(arch, g, plans, opts...)
	wall := time.Since(start)
	code = reportRunErr(code, runErr)

	cfg := spec.AcceleratorConfig()
	switch arch {
	case fingers.ArchFingers:
		fmt.Printf("FINGERS   %2d PEs × %2d IUs (s_l=%d): %s%s\n",
			specPEs(spec), cfg.NumIUs, cfg.LongSegLen, rep.Result, partialMark(runErr))
		fmt.Printf("          IU active %.1f%%, balance %.1f%%\n",
			100*rep.IU.ActiveRate(), 100*rep.IU.BalanceRate())
	case fingers.ArchFlexMiner:
		fmt.Printf("FlexMiner %2d PEs: %s%s\n", specPEs(spec), rep.Result, partialMark(runErr))
	case fingers.ArchSISA:
		fmt.Printf("SISA      %2d PEs: %s%s\n", specPEs(spec), rep.Result, partialMark(runErr))
	}
	fmt.Printf("          breakdown: %s\n", rep.Result.Breakdown)
	fmt.Printf("          roots dispatched: %d/%d\n", rep.RootsDone, rep.RootsTotal)

	if runLog != nil {
		recIUs := 0
		if arch == fingers.ArchFingers {
			recIUs = cfg.NumIUs
		}
		rec := exp.NewRunRecord(spec.Arch, "fingersim", spec.Graph, spec.Pattern,
			specPEs(spec), recIUs, spec.CacheBytes(), g, rep.Result, rep.PerPE)
		rec.Partial = rep.Partial
		rec.StartedAt = start.UTC().Format(time.RFC3339Nano)
		rec.WallNS = wall.Nanoseconds()
		if spec.SimShards > 1 {
			rec.SimShards = rep.Shards
		}
		if arch == fingers.ArchFingers {
			rec.IUActiveRate = rep.IU.ActiveRate()
			rec.IUBalanceRate = rep.IU.BalanceRate()
		}
		if err := runLog.Write(rec); err != nil {
			code = reportRunErr(code, err)
		}
	}
	return code
}

// specPEs is the effective PE count (a zero spec field means 1).
func specPEs(s fingers.JobSpec) int {
	if s.PEs == 0 {
		return 1
	}
	return s.PEs
}

// reportRunErr folds one run error into the exit code: 130 for a
// signal-driven cancellation (the shell convention for SIGINT), 1 for
// anything else, keeping the first nonzero code.
func reportRunErr(code int, err error) int {
	if err == nil {
		return code
	}
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	next := 1
	if se, ok := simerr.As(err); ok && se.IsCancellation() {
		next = 130
	}
	if code != 0 {
		return code
	}
	return next
}

// partialMark annotates a result line whose run was cut short.
func partialMark(err error) string {
	if err != nil {
		return "  [partial]"
	}
	return ""
}

// failCode reports err and returns the first nonzero exit code.
func failCode(code int, err error) int {
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	if code != 0 {
		return code
	}
	return 1
}

// fail reports err and returns exit code 1 (flag/input errors, before
// any simulation state exists).
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fingersim:", err)
	return 1
}
