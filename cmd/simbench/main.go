// Command simbench benchmarks the simulator itself: it runs the quick
// experiment grid (small datasets × {tc, tt, cyc}) on the serial event
// loop and on the bounded-lag parallel engine, and reports wall time,
// simulated cycles per second, allocation and GC-pause totals, the
// parallel/serial wall-clock speedup, the workers=1 engine overhead, and
// the makespan divergence of the approximate parallel schedule.
//
// Usage:
//
//	simbench [-pes 8] [-sim-workers 8] [-sim-window 256] [-o BENCH_sim.json]
//	         [-runs 1] [-reps 3] [-run-tag ci]
//	         [-baseline BENCH_sim.json] [-max-regress-pct 10]
//
// Each cell is measured -runs times (every measurement itself best-of
// -reps timed repetitions) and the medians are reported — single-shot
// wall times on shared CI runners are too noisy for downstream trend
// tooling to flag regressions honestly. The report header records the
// run count plus provenance (start time, git revision, host shape, and
// the optional -run-tag batch label) so reports can be ordered and
// attributed across time.
//
// With -baseline, the run compares its serial cycles/sec geomean against
// the baseline report and exits non-zero when it regressed by more than
// -max-regress-pct — the CI guard against simulator slowdowns.
//
// The JSON report records the host core count: wall-clock speedup needs
// real cores, while the determinism contract (counts bit-identical,
// divergence bounded) holds on any host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"fingers"
	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/exp"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/graph"
	"fingers/internal/mem"
	"fingers/internal/plan"
	"fingers/internal/simreport"
	"fingers/internal/telemetry"
)

// measured is one instrumented run: wall time plus MemStats deltas.
type measured struct {
	ns     int64
	allocs uint64
	bytes  uint64
	pause  uint64
}

// measure times f with allocation accounting. The GC runs first so the
// deltas reflect f alone, not a prior run's deferred collection.
func measure(f func()) measured {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	f()
	ns := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	return measured{
		ns:     ns,
		allocs: m1.Mallocs - m0.Mallocs,
		bytes:  m1.TotalAlloc - m0.TotalAlloc,
		pause:  m1.PauseTotalNs - m0.PauseTotalNs,
	}
}

// measureCell runs one (graph, pattern) cell once: reps timed
// repetitions per engine, keeping the best time of each. shards > 1
// additionally measures the sharded mode (shards independent chips on
// separate OS threads, serial event loop inside each).
func measureCell(g *graph.Graph, plans []*plan.Plan, pes, reps, shards int, pcfg, w1cfg accel.ParallelConfig) (simreport.Cell, error) {
	var cell simreport.Cell
	var serial, par accel.Result
	cell.SerialWallNS = int64(math.MaxInt64)
	cell.ParallelWallNS = int64(math.MaxInt64)
	cell.Workers1WallNS = int64(math.MaxInt64)
	cell.ShardedWallNS = int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		chip, err := fingerspe.NewChipErr(fingerspe.DefaultConfig(), pes, 0, g, plans)
		if err != nil {
			return cell, err
		}
		m := measure(func() { serial = chip.Run() })
		if m.ns < cell.SerialWallNS {
			cell.SerialWallNS = m.ns
			cell.SerialAllocs, cell.SerialAllocBytes, cell.SerialGCPauseNS = m.allocs, m.bytes, m.pause
		}

		chip, err = fingerspe.NewChipErr(fingerspe.DefaultConfig(), pes, 0, g, plans)
		if err != nil {
			return cell, err
		}
		m = measure(func() {
			par, err = chip.RunParallel(pcfg)
		})
		if err != nil {
			return cell, err
		}
		if m.ns < cell.ParallelWallNS {
			cell.ParallelWallNS = m.ns
			cell.ParAllocs, cell.ParAllocBytes, cell.ParGCPauseNS = m.allocs, m.bytes, m.pause
		}

		chip, err = fingerspe.NewChipErr(fingerspe.DefaultConfig(), pes, 0, g, plans)
		if err != nil {
			return cell, err
		}
		t0 := time.Now()
		if _, err := chip.RunParallel(w1cfg); err != nil {
			return cell, err
		}
		if ns := time.Since(t0).Nanoseconds(); ns < cell.Workers1WallNS {
			cell.Workers1WallNS = ns
		}
	}
	if shards > 1 {
		for r := 0; r < reps; r++ {
			var rep fingers.SimReport
			var err error
			m := measure(func() {
				rep, err = fingers.Simulate(fingers.ArchFingers, g, plans,
					fingers.WithPEs(pes), fingers.WithShards(shards))
			})
			if err != nil {
				return cell, err
			}
			if m.ns < cell.ShardedWallNS {
				cell.ShardedWallNS = m.ns
				cell.ShardWallsNS = rep.ShardWallNS
				cell.ShardedAllocs = m.allocs
			}
			cell.ShardedCountsOK = rep.Result.Count == serial.Count && rep.Result.Tasks == serial.Tasks
			if !cell.ShardedCountsOK {
				return cell, fmt.Errorf("sharded counts diverge from serial (%d != %d)",
					rep.Result.Count, serial.Count)
			}
		}
	} else {
		cell.ShardedWallNS = 0
	}
	cell.SimCycles = serial.Cycles
	cell.ParallelCycles = par.Cycles
	cell.CountsIdentical = serial.Count == par.Count && serial.Tasks == par.Tasks
	cell.DivergencePct = 100 * math.Abs(float64(par.Cycles)-float64(serial.Cycles)) / float64(serial.Cycles)
	return cell, nil
}

// medianCell combines N independent measurements of one cell into the
// reported cell: per engine, the median wall time (lower middle for
// even N) with its allocation profile, derived ratios recomputed from
// the chosen medians. Simulated results are deterministic, so cycles
// and count-identity come from the first sample and must agree across
// all of them.
func medianCell(samples []simreport.Cell) simreport.Cell {
	cell := samples[0]
	pick := func(key func(simreport.Cell) int64) simreport.Cell {
		sorted := append([]simreport.Cell(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) < key(sorted[j]) })
		return sorted[(len(sorted)-1)/2]
	}
	s := pick(func(c simreport.Cell) int64 { return c.SerialWallNS })
	cell.SerialWallNS = s.SerialWallNS
	cell.SerialAllocs, cell.SerialAllocBytes, cell.SerialGCPauseNS = s.SerialAllocs, s.SerialAllocBytes, s.SerialGCPauseNS
	p := pick(func(c simreport.Cell) int64 { return c.ParallelWallNS })
	cell.ParallelWallNS = p.ParallelWallNS
	cell.ParAllocs, cell.ParAllocBytes, cell.ParGCPauseNS = p.ParAllocs, p.ParAllocBytes, p.ParGCPauseNS
	cell.Workers1WallNS = pick(func(c simreport.Cell) int64 { return c.Workers1WallNS }).Workers1WallNS
	if cell.ShardedWallNS > 0 {
		sh := pick(func(c simreport.Cell) int64 { return c.ShardedWallNS })
		cell.ShardedWallNS = sh.ShardedWallNS
		cell.ShardWallsNS = sh.ShardWallsNS
		cell.ShardedAllocs = sh.ShardedAllocs
	}
	return cell
}

// finishCell derives the ratio fields from the (possibly median)
// wall times.
func finishCell(cell *simreport.Cell) {
	cell.Speedup = float64(cell.SerialWallNS) / float64(cell.ParallelWallNS)
	cell.Workers1Factor = float64(cell.SerialWallNS) / float64(cell.Workers1WallNS)
	cell.SerialCyclesSec = float64(cell.SimCycles) / (float64(cell.SerialWallNS) / 1e9)
	cell.ParCyclesSec = float64(cell.ParallelCycles) / (float64(cell.ParallelWallNS) / 1e9)
	if cell.ShardedWallNS > 0 {
		cell.ShardedSpeedup = float64(cell.SerialWallNS) / float64(cell.ShardedWallNS)
	}
}

func main() {
	pes := flag.Int("pes", 8, "simulated chip PE count")
	workers := flag.Int("sim-workers", runtime.GOMAXPROCS(0), "parallel engine host threads")
	window := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ (simulated cycles)")
	shards := flag.Int("shards", 0, "also measure the sharded mode with this many independent engine instances (0 = off; clamped to -pes)")
	minShardSpeed := flag.Float64("min-shard-speedup", 0, "fail when the sharded speedup geomean is at or below this (0 = no gate); the CI multi-core scaling guard")
	reps := flag.Int("reps", 3, "timed repetitions per measurement (best-of)")
	runs := flag.Int("runs", 1, "independent measurements per cell; the report carries their median")
	runTag := flag.String("run-tag", "", "batch label recorded in the report header (groups runs in the trend viewer)")
	out := flag.String("o", "BENCH_sim.json", "output JSON path")
	baseline := flag.String("baseline", "", "prior BENCH_sim.json to guard against regression (optional)")
	maxRegress := flag.Float64("max-regress-pct", 10, "fail when serial cycles/sec geomean drops more than this vs -baseline")
	flag.Parse()

	if *runs < 1 {
		fatal(fmt.Errorf("-runs must be >= 1, got %d", *runs))
	}
	pcfg := accel.ParallelConfig{Window: mem.Cycles(*window), Workers: *workers}
	if err := pcfg.Validate(); err != nil {
		fatal(err)
	}
	w1cfg := pcfg
	w1cfg.Workers = 1

	effShards := *shards
	if effShards > *pes {
		effShards = *pes // mirrors the façade's own clamp
	}
	if effShards == 1 {
		effShards = 0
	}

	meta := telemetry.HostMeta()
	meta.RunTag = *runTag
	started := time.Now()
	rep := simreport.Report{
		Schema:  simreport.Schema,
		Meta:    meta,
		PEs:     *pes,
		Workers: *workers,
		Window:  pcfg.Window,
		Runs:    *runs,
		Shards:  effShards,
		Note: "wall-clock speedup requires free host cores (workers > 1 on a multi-core host); " +
			"simulated results are deterministic in the window on any host",
	}
	if meta.HostCores == 1 || meta.GoMaxProcs == 1 {
		rep.Warning = fmt.Sprintf(
			"single-core measurement (host_cores=%d, gomaxprocs=%d): every wall-clock speedup below is an artifact of time slicing and says nothing about the engine; rerun on a multi-core host for a scaling verdict",
			meta.HostCores, meta.GoMaxProcs)
		fmt.Fprintf(os.Stderr, "simbench: WARNING: %s\n", rep.Warning)
	}

	logSpeed, logW1, logCPS, logDiv, nDiv := 0.0, 0.0, 0.0, 0.0, 0
	logShard := 0.0
	for _, d := range datasets.Small() {
		g := d.Graph()
		for _, pat := range []string{"tc", "tt", "cyc"} {
			plans, err := exp.PlansFor(pat)
			if err != nil {
				fatal(err)
			}
			samples := make([]simreport.Cell, *runs)
			for i := range samples {
				samples[i], err = measureCell(g, plans, *pes, *reps, effShards, pcfg, w1cfg)
				if err != nil {
					fatal(err)
				}
				if samples[i].SimCycles != samples[0].SimCycles || samples[i].CountsIdentical != samples[0].CountsIdentical {
					fatal(fmt.Errorf("%s/%s: run %d disagrees with run 0 on simulated results", d.Name, pat, i))
				}
			}
			cell := medianCell(samples)
			cell.Graph, cell.Pattern = d.Name, pat
			finishCell(&cell)
			// Representation-mix columns (v4): how the adaptive hybrid
			// view classified this graph, and what the non-array tiers
			// cost fully materialized.
			fp := g.Hybrid().Footprint()
			cell.DenseRows = fp.DenseRows
			cell.BitmapRows = fp.BitmapRows
			cell.HybridBytes = fp.HybridBytes()
			rep.Cells = append(rep.Cells, cell)

			logSpeed += math.Log(cell.Speedup)
			logW1 += math.Log(cell.Workers1Factor)
			logCPS += math.Log(cell.SerialCyclesSec)
			if cell.ShardedSpeedup > 0 {
				logShard += math.Log(cell.ShardedSpeedup)
			}
			if cell.DivergencePct > rep.MaxDivPct {
				rep.MaxDivPct = cell.DivergencePct
			}
			// Geomean over non-zero divergences only (log of 0 is -inf);
			// exact cells pull the geomean to 0 via nDiv weighting below.
			if cell.DivergencePct > 0 {
				logDiv += math.Log(cell.DivergencePct)
				nDiv++
			}

			shardCol := ""
			if cell.ShardedSpeedup > 0 {
				shardCol = fmt.Sprintf("  shard %5.2fx", cell.ShardedSpeedup)
			}
			fmt.Printf("%-3s %-4s serial %8.1fms  parallel %8.1fms  speedup %5.2fx  w1 %5.2fx%s  div %.3f%%  allocs %d  counts-ok %v  dense %d  bm %d  hyb %.1fKB\n",
				d.Name, pat, float64(cell.SerialWallNS)/1e6, float64(cell.ParallelWallNS)/1e6,
				cell.Speedup, cell.Workers1Factor, shardCol, cell.DivergencePct, cell.SerialAllocs, cell.CountsIdentical,
				cell.DenseRows, cell.BitmapRows, float64(cell.HybridBytes)/1024)

			if !cell.CountsIdentical {
				fatal(fmt.Errorf("%s/%s: parallel counts diverge from serial", d.Name, pat))
			}
		}
	}
	n := float64(len(rep.Cells))
	rep.GeomeanSpeed = math.Exp(logSpeed / n)
	rep.GeomeanW1 = math.Exp(logW1 / n)
	rep.GeomeanSerCPS = math.Exp(logCPS / n)
	if nDiv > 0 {
		rep.GeomeanDivPc = math.Exp(logDiv / float64(nDiv))
	}
	if effShards > 1 {
		rep.GeomeanShardSpeed = math.Exp(logShard / n)
	}
	rep.WallNS = time.Since(started).Nanoseconds()

	fmt.Printf("geomean speedup %.2fx, workers=1 factor %.2fx, serial %.0f cycles/sec (host cores %d, workers %d, runs %d), geomean divergence %.3f%%, max %.3f%%\n",
		rep.GeomeanSpeed, rep.GeomeanW1, rep.GeomeanSerCPS, rep.HostCores, rep.Workers, rep.Runs, rep.GeomeanDivPc, rep.MaxDivPct)
	if effShards > 1 {
		fmt.Printf("geomean sharded speedup %.2fx (%d shards over %d PEs)\n", rep.GeomeanShardSpeed, effShards, *pes)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)

	if *baseline != "" {
		if err := checkRegression(*baseline, rep, *maxRegress); err != nil {
			fatal(err)
		}
	}
	if *minShardSpeed > 0 {
		if effShards <= 1 {
			fatal(fmt.Errorf("-min-shard-speedup needs -shards > 1"))
		}
		if rep.GeomeanShardSpeed <= *minShardSpeed {
			fatal(fmt.Errorf("sharded speedup geomean %.2fx is at or below the %.2fx gate (%d shards, host cores %d)",
				rep.GeomeanShardSpeed, *minShardSpeed, effShards, rep.HostCores))
		}
	}
}

// checkRegression compares the run's serial cycles/sec geomean against a
// committed baseline report, failing on a drop beyond maxRegressPct. The
// baseline's geomean field is recomputed from its cells when absent (v1
// reports predate it).
func checkRegression(path string, cur simreport.Report, maxRegressPct float64) error {
	base, err := simreport.ParseFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	baseCPS := base.SerialGeomeanCPS()
	if baseCPS == 0 {
		return fmt.Errorf("baseline %s: no serial cycles/sec data", path)
	}
	ratio := cur.GeomeanSerCPS / baseCPS
	fmt.Printf("baseline %s: serial geomean %.0f cycles/sec, current %.0f (%.2fx)\n",
		path, baseCPS, cur.GeomeanSerCPS, ratio)
	if ratio < 1-maxRegressPct/100 {
		return fmt.Errorf("serial cycles/sec geomean regressed %.1f%% vs %s (limit %.1f%%)",
			(1-ratio)*100, path, maxRegressPct)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
