// Command simbench benchmarks the simulator itself: it runs the quick
// experiment grid (small datasets × {tc, tt, cyc}) on the serial event
// loop and on the bounded-lag parallel engine, and reports wall time,
// simulated cycles per second, the parallel/serial wall-clock speedup,
// and the makespan divergence of the approximate parallel schedule.
//
// Usage:
//
//	simbench [-pes 8] [-sim-workers 8] [-sim-window 256] [-o BENCH_sim.json]
//
// The JSON report records the host core count: wall-clock speedup needs
// real cores, while the determinism contract (counts bit-identical,
// divergence bounded) holds on any host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/exp"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/mem"
)

// Cell is one (graph, pattern) benchmark measurement.
type Cell struct {
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`

	SimCycles       mem.Cycles `json:"sim_cycles"`        // serial makespan
	ParallelCycles  mem.Cycles `json:"parallel_cycles"`   // parallel makespan
	DivergencePct   float64    `json:"divergence_pct"`    // |par-serial|/serial × 100
	CountsIdentical bool       `json:"counts_identical"`  // embedding counts bit-identical
	SerialWallNS    int64      `json:"serial_wall_ns"`    // serial engine wall time
	ParallelWallNS  int64      `json:"parallel_wall_ns"`  // parallel engine wall time
	Speedup         float64    `json:"speedup"`           // serial wall / parallel wall
	SerialCyclesSec float64    `json:"serial_cycles_sec"` // simulated cycles per wall second
	ParCyclesSec    float64    `json:"parallel_cycles_sec"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Schema       string     `json:"schema"`
	PEs          int        `json:"pes"`
	Workers      int        `json:"workers"`
	Window       mem.Cycles `json:"window"`
	HostCores    int        `json:"host_cores"`
	GoMaxProcs   int        `json:"gomaxprocs"`
	Cells        []Cell     `json:"cells"`
	GeomeanSpeed float64    `json:"geomean_speedup"`
	GeomeanDivPc float64    `json:"geomean_divergence_pct"`
	MaxDivPct    float64    `json:"max_divergence_pct"`
	Note         string     `json:"note"`
}

func main() {
	pes := flag.Int("pes", 8, "simulated chip PE count")
	workers := flag.Int("sim-workers", runtime.GOMAXPROCS(0), "parallel engine host threads")
	window := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ (simulated cycles)")
	reps := flag.Int("reps", 3, "timed repetitions per cell (best-of)")
	out := flag.String("o", "BENCH_sim.json", "output JSON path")
	flag.Parse()

	pcfg := accel.ParallelConfig{Window: mem.Cycles(*window), Workers: *workers}
	if err := pcfg.Validate(); err != nil {
		fatal(err)
	}

	rep := Report{
		Schema:     "fingers/simbench/v1",
		PEs:        *pes,
		Workers:    *workers,
		Window:     pcfg.Window,
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "wall-clock speedup requires free host cores (workers > 1 on a multi-core host); " +
			"simulated results are deterministic in the window on any host",
	}

	logSpeed, logDiv, nDiv := 0.0, 0.0, 0
	for _, d := range datasets.Small() {
		g := d.Graph()
		for _, pat := range []string{"tc", "tt", "cyc"} {
			plans, err := exp.PlansFor(pat)
			if err != nil {
				fatal(err)
			}
			cell := Cell{Graph: d.Name, Pattern: pat}

			var serial, par accel.Result
			cell.SerialWallNS = int64(math.MaxInt64)
			cell.ParallelWallNS = int64(math.MaxInt64)
			for r := 0; r < *reps; r++ {
				chip := fingerspe.NewChip(fingerspe.DefaultConfig(), *pes, 0, g, plans)
				t0 := time.Now()
				serial = chip.Run()
				if ns := time.Since(t0).Nanoseconds(); ns < cell.SerialWallNS {
					cell.SerialWallNS = ns
				}

				chip = fingerspe.NewChip(fingerspe.DefaultConfig(), *pes, 0, g, plans)
				t0 = time.Now()
				par, err = chip.RunParallel(pcfg)
				if err != nil {
					fatal(err)
				}
				if ns := time.Since(t0).Nanoseconds(); ns < cell.ParallelWallNS {
					cell.ParallelWallNS = ns
				}
			}

			cell.SimCycles = serial.Cycles
			cell.ParallelCycles = par.Cycles
			cell.CountsIdentical = serial.Count == par.Count && serial.Tasks == par.Tasks
			cell.DivergencePct = 100 * math.Abs(float64(par.Cycles)-float64(serial.Cycles)) / float64(serial.Cycles)
			cell.Speedup = float64(cell.SerialWallNS) / float64(cell.ParallelWallNS)
			cell.SerialCyclesSec = float64(serial.Cycles) / (float64(cell.SerialWallNS) / 1e9)
			cell.ParCyclesSec = float64(par.Cycles) / (float64(cell.ParallelWallNS) / 1e9)
			rep.Cells = append(rep.Cells, cell)

			logSpeed += math.Log(cell.Speedup)
			if cell.DivergencePct > rep.MaxDivPct {
				rep.MaxDivPct = cell.DivergencePct
			}
			// Geomean over non-zero divergences only (log of 0 is -inf);
			// exact cells pull the geomean to 0 via nDiv weighting below.
			if cell.DivergencePct > 0 {
				logDiv += math.Log(cell.DivergencePct)
				nDiv++
			}

			fmt.Printf("%-3s %-4s serial %8.1fms  parallel %8.1fms  speedup %5.2fx  div %.3f%%  counts-ok %v\n",
				d.Name, pat, float64(cell.SerialWallNS)/1e6, float64(cell.ParallelWallNS)/1e6,
				cell.Speedup, cell.DivergencePct, cell.CountsIdentical)

			if !cell.CountsIdentical {
				fatal(fmt.Errorf("%s/%s: parallel counts diverge from serial", d.Name, pat))
			}
		}
	}
	rep.GeomeanSpeed = math.Exp(logSpeed / float64(len(rep.Cells)))
	if nDiv > 0 {
		rep.GeomeanDivPc = math.Exp(logDiv / float64(nDiv))
	}

	fmt.Printf("geomean speedup %.2fx (host cores %d, workers %d), geomean divergence %.3f%%, max %.3f%%\n",
		rep.GeomeanSpeed, rep.HostCores, rep.Workers, rep.GeomeanDivPc, rep.MaxDivPct)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
