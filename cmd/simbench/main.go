// Command simbench benchmarks the simulator itself: it runs the quick
// experiment grid (small datasets × {tc, tt, cyc}) on the serial event
// loop and on the bounded-lag parallel engine, and reports wall time,
// simulated cycles per second, allocation and GC-pause totals, the
// parallel/serial wall-clock speedup, the workers=1 engine overhead, and
// the makespan divergence of the approximate parallel schedule.
//
// Usage:
//
//	simbench [-pes 8] [-sim-workers 8] [-sim-window 256] [-o BENCH_sim.json]
//	         [-baseline BENCH_sim.json] [-max-regress-pct 10]
//
// With -baseline, the run compares its serial cycles/sec geomean against
// the baseline report and exits non-zero when it regressed by more than
// -max-regress-pct — the CI guard against simulator slowdowns.
//
// The JSON report records the host core count: wall-clock speedup needs
// real cores, while the determinism contract (counts bit-identical,
// divergence bounded) holds on any host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"fingers/internal/accel"
	"fingers/internal/datasets"
	"fingers/internal/exp"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/mem"
)

// Cell is one (graph, pattern) benchmark measurement.
type Cell struct {
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`

	SimCycles       mem.Cycles `json:"sim_cycles"`        // serial makespan
	ParallelCycles  mem.Cycles `json:"parallel_cycles"`   // parallel makespan
	DivergencePct   float64    `json:"divergence_pct"`    // |par-serial|/serial × 100
	CountsIdentical bool       `json:"counts_identical"`  // embedding counts bit-identical
	SerialWallNS    int64      `json:"serial_wall_ns"`    // serial engine wall time
	ParallelWallNS  int64      `json:"parallel_wall_ns"`  // parallel engine wall time
	Workers1WallNS  int64      `json:"workers1_wall_ns"`  // parallel engine, Workers=1
	Speedup         float64    `json:"speedup"`           // serial wall / parallel wall
	Workers1Factor  float64    `json:"workers1_factor"`   // serial wall / workers=1 wall
	SerialCyclesSec float64    `json:"serial_cycles_sec"` // simulated cycles per wall second
	ParCyclesSec    float64    `json:"parallel_cycles_sec"`

	// Allocation profile of the best-time repetition (runtime.MemStats
	// deltas around the run: mallocs, bytes, and stop-the-world pause).
	SerialAllocs     uint64 `json:"serial_allocs"`
	SerialAllocBytes uint64 `json:"serial_alloc_bytes"`
	SerialGCPauseNS  uint64 `json:"serial_gc_pause_ns"`
	ParAllocs        uint64 `json:"parallel_allocs"`
	ParAllocBytes    uint64 `json:"parallel_alloc_bytes"`
	ParGCPauseNS     uint64 `json:"parallel_gc_pause_ns"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Schema        string     `json:"schema"`
	PEs           int        `json:"pes"`
	Workers       int        `json:"workers"`
	Window        mem.Cycles `json:"window"`
	HostCores     int        `json:"host_cores"`
	GoMaxProcs    int        `json:"gomaxprocs"`
	Cells         []Cell     `json:"cells"`
	GeomeanSpeed  float64    `json:"geomean_speedup"`
	GeomeanW1     float64    `json:"geomean_workers1_factor"`
	GeomeanSerCPS float64    `json:"geomean_serial_cycles_sec"`
	GeomeanDivPc  float64    `json:"geomean_divergence_pct"`
	MaxDivPct     float64    `json:"max_divergence_pct"`
	Note          string     `json:"note"`
}

// measured is one instrumented run: wall time plus MemStats deltas.
type measured struct {
	ns     int64
	allocs uint64
	bytes  uint64
	pause  uint64
}

// measure times f with allocation accounting. The GC runs first so the
// deltas reflect f alone, not a prior run's deferred collection.
func measure(f func()) measured {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	f()
	ns := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	return measured{
		ns:     ns,
		allocs: m1.Mallocs - m0.Mallocs,
		bytes:  m1.TotalAlloc - m0.TotalAlloc,
		pause:  m1.PauseTotalNs - m0.PauseTotalNs,
	}
}

func main() {
	pes := flag.Int("pes", 8, "simulated chip PE count")
	workers := flag.Int("sim-workers", runtime.GOMAXPROCS(0), "parallel engine host threads")
	window := flag.Int64("sim-window", int64(accel.DefaultWindow), "parallel engine epoch window Δ (simulated cycles)")
	reps := flag.Int("reps", 3, "timed repetitions per cell (best-of)")
	out := flag.String("o", "BENCH_sim.json", "output JSON path")
	baseline := flag.String("baseline", "", "prior BENCH_sim.json to guard against regression (optional)")
	maxRegress := flag.Float64("max-regress-pct", 10, "fail when serial cycles/sec geomean drops more than this vs -baseline")
	flag.Parse()

	pcfg := accel.ParallelConfig{Window: mem.Cycles(*window), Workers: *workers}
	if err := pcfg.Validate(); err != nil {
		fatal(err)
	}
	w1cfg := pcfg
	w1cfg.Workers = 1

	rep := Report{
		Schema:     "fingers/simbench/v2",
		PEs:        *pes,
		Workers:    *workers,
		Window:     pcfg.Window,
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "wall-clock speedup requires free host cores (workers > 1 on a multi-core host); " +
			"simulated results are deterministic in the window on any host",
	}

	logSpeed, logW1, logCPS, logDiv, nDiv := 0.0, 0.0, 0.0, 0.0, 0
	for _, d := range datasets.Small() {
		g := d.Graph()
		for _, pat := range []string{"tc", "tt", "cyc"} {
			plans, err := exp.PlansFor(pat)
			if err != nil {
				fatal(err)
			}
			cell := Cell{Graph: d.Name, Pattern: pat}

			var serial, par accel.Result
			cell.SerialWallNS = int64(math.MaxInt64)
			cell.ParallelWallNS = int64(math.MaxInt64)
			cell.Workers1WallNS = int64(math.MaxInt64)
			for r := 0; r < *reps; r++ {
				chip := fingerspe.NewChip(fingerspe.DefaultConfig(), *pes, 0, g, plans)
				m := measure(func() { serial = chip.Run() })
				if m.ns < cell.SerialWallNS {
					cell.SerialWallNS = m.ns
					cell.SerialAllocs, cell.SerialAllocBytes, cell.SerialGCPauseNS = m.allocs, m.bytes, m.pause
				}

				chip = fingerspe.NewChip(fingerspe.DefaultConfig(), *pes, 0, g, plans)
				m = measure(func() {
					par, err = chip.RunParallel(pcfg)
				})
				if err != nil {
					fatal(err)
				}
				if m.ns < cell.ParallelWallNS {
					cell.ParallelWallNS = m.ns
					cell.ParAllocs, cell.ParAllocBytes, cell.ParGCPauseNS = m.allocs, m.bytes, m.pause
				}

				chip = fingerspe.NewChip(fingerspe.DefaultConfig(), *pes, 0, g, plans)
				t0 := time.Now()
				if _, err := chip.RunParallel(w1cfg); err != nil {
					fatal(err)
				}
				if ns := time.Since(t0).Nanoseconds(); ns < cell.Workers1WallNS {
					cell.Workers1WallNS = ns
				}
			}

			cell.SimCycles = serial.Cycles
			cell.ParallelCycles = par.Cycles
			cell.CountsIdentical = serial.Count == par.Count && serial.Tasks == par.Tasks
			cell.DivergencePct = 100 * math.Abs(float64(par.Cycles)-float64(serial.Cycles)) / float64(serial.Cycles)
			cell.Speedup = float64(cell.SerialWallNS) / float64(cell.ParallelWallNS)
			cell.Workers1Factor = float64(cell.SerialWallNS) / float64(cell.Workers1WallNS)
			cell.SerialCyclesSec = float64(serial.Cycles) / (float64(cell.SerialWallNS) / 1e9)
			cell.ParCyclesSec = float64(par.Cycles) / (float64(cell.ParallelWallNS) / 1e9)
			rep.Cells = append(rep.Cells, cell)

			logSpeed += math.Log(cell.Speedup)
			logW1 += math.Log(cell.Workers1Factor)
			logCPS += math.Log(cell.SerialCyclesSec)
			if cell.DivergencePct > rep.MaxDivPct {
				rep.MaxDivPct = cell.DivergencePct
			}
			// Geomean over non-zero divergences only (log of 0 is -inf);
			// exact cells pull the geomean to 0 via nDiv weighting below.
			if cell.DivergencePct > 0 {
				logDiv += math.Log(cell.DivergencePct)
				nDiv++
			}

			fmt.Printf("%-3s %-4s serial %8.1fms  parallel %8.1fms  speedup %5.2fx  w1 %5.2fx  div %.3f%%  allocs %d  counts-ok %v\n",
				d.Name, pat, float64(cell.SerialWallNS)/1e6, float64(cell.ParallelWallNS)/1e6,
				cell.Speedup, cell.Workers1Factor, cell.DivergencePct, cell.SerialAllocs, cell.CountsIdentical)

			if !cell.CountsIdentical {
				fatal(fmt.Errorf("%s/%s: parallel counts diverge from serial", d.Name, pat))
			}
		}
	}
	n := float64(len(rep.Cells))
	rep.GeomeanSpeed = math.Exp(logSpeed / n)
	rep.GeomeanW1 = math.Exp(logW1 / n)
	rep.GeomeanSerCPS = math.Exp(logCPS / n)
	if nDiv > 0 {
		rep.GeomeanDivPc = math.Exp(logDiv / float64(nDiv))
	}

	fmt.Printf("geomean speedup %.2fx, workers=1 factor %.2fx, serial %.0f cycles/sec (host cores %d, workers %d), geomean divergence %.3f%%, max %.3f%%\n",
		rep.GeomeanSpeed, rep.GeomeanW1, rep.GeomeanSerCPS, rep.HostCores, rep.Workers, rep.GeomeanDivPc, rep.MaxDivPct)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)

	if *baseline != "" {
		if err := checkRegression(*baseline, rep, *maxRegress); err != nil {
			fatal(err)
		}
	}
}

// checkRegression compares the run's serial cycles/sec geomean against a
// committed baseline report, failing on a drop beyond maxRegressPct. The
// baseline's geomean field is recomputed from its cells when absent (v1
// reports predate it).
func checkRegression(path string, cur Report, maxRegressPct float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseCPS := base.GeomeanSerCPS
	if baseCPS == 0 && len(base.Cells) > 0 {
		logSum := 0.0
		for _, c := range base.Cells {
			logSum += math.Log(c.SerialCyclesSec)
		}
		baseCPS = math.Exp(logSum / float64(len(base.Cells)))
	}
	if baseCPS == 0 {
		return fmt.Errorf("baseline %s: no serial cycles/sec data", path)
	}
	ratio := cur.GeomeanSerCPS / baseCPS
	fmt.Printf("baseline %s: serial geomean %.0f cycles/sec, current %.0f (%.2fx)\n",
		path, baseCPS, cur.GeomeanSerCPS, ratio)
	if ratio < 1-maxRegressPct/100 {
		return fmt.Errorf("serial cycles/sec geomean regressed %.1f%% vs %s (limit %.1f%%)",
			(1-ratio)*100, path, maxRegressPct)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}
