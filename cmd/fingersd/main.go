// Command fingersd serves graph-mining simulations over HTTP: a
// long-lived daemon that loads and preprocesses each dataset once,
// shares the immutable graph (CSR + hub index) across requests, and
// runs fingers.JobSpec jobs through a bounded admission queue with
// per-request deadlines.
//
// Usage:
//
//	fingersd -addr :8080 -concurrency 4 -queue 32 -json runs.jsonl
//	curl -s localhost:8080/v1/graphs
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"arch":"fingers","graph":"Mi","pattern":"tc","pes":8}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/stream > run.jsonl
//
// The stream endpoint emits fingers.run/v1 JSONL — periodic partial
// records while the job runs, then the final record — which fingerstat
// ingests directly.
//
// SIGINT/SIGTERM drains gracefully: admission stops (503), running and
// queued jobs get -drain-timeout to finish, anything still in flight is
// then canceled so its partial record is flushed to -json, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fingers/internal/service"
	"fingers/internal/telemetry"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 2, "jobs simulated at once")
	queueDepth := flag.Int("queue", 16, "admission queue depth (full queue returns 429)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline applied to jobs that set none (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0, "clamp on per-job deadlines (0 = no clamp)")
	maxShards := flag.Int("max-shards", 0, "clamp on per-job sim_shards requests (0 = no clamp)")
	jsonOut := flag.String("json", "", "append one JSONL run record per finished job here")
	runTag := flag.String("run-tag", "", "default run tag stamped into records (a job's own tag wins)")
	preload := flag.String("preload", "", "comma-separated graphs to load at startup (\"all\" = every registered graph)")
	streamInterval := flag.Duration("stream-interval", 500*time.Millisecond, "cadence of partial records on /stream")
	progressEvery := flag.Int64("progress-every", 65536, "scheduler steps between live progress snapshots")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight jobs on shutdown before they are canceled")
	flag.Parse()

	reg := service.NewRegistry()
	if *preload != "" {
		for _, n := range strings.Split(*preload, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if err := reg.Preload(n); err != nil {
				return fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "fingersd: preloaded %s\n", *preload)
	}

	var runLog *telemetry.RunLog
	if *jsonOut != "" {
		var err error
		runLog, err = telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			return fail(err)
		}
		defer runLog.Close()
	}
	meta := telemetry.HostMeta()
	meta.Source = "fingersd"
	meta.RunTag = *runTag
	if runLog != nil {
		runLog.SetMeta(meta)
	}

	mgr := service.NewManager(reg, service.Config{
		Concurrency:    *concurrency,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxShards:      *maxShards,
		ProgressEvery:  *progressEvery,
		Meta:           meta,
		Log:            runLog,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewServer(mgr, *streamInterval).Handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fingersd: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed before any signal (bad address, port in use).
		mgr.Drain(0)
		return fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "fingersd: draining")
	// Stop admission and flush in-flight jobs first, so every record —
	// partial or complete — is written before connections close.
	mgr.Drain(*drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "fingersd: drained, exiting")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fingersd:", err)
	return 1
}
