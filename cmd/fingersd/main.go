// Command fingersd serves graph-mining simulations over HTTP: a
// long-lived daemon that loads and preprocesses each dataset once,
// shares the immutable graph (CSR + hub index) across requests, and
// runs fingers.JobSpec jobs through a bounded admission queue with
// per-request deadlines.
//
// Usage:
//
//	fingersd -addr :8080 -concurrency 4 -queue 32 -json runs.jsonl
//	curl -s localhost:8080/v1/graphs
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"arch":"fingers","graph":"Mi","pattern":"tc","pes":8}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/stream > run.jsonl
//
// The stream endpoint emits fingers.run/v1 JSONL — periodic partial
// records while the job runs, then the final record — which fingerstat
// ingests directly.
//
// SIGINT/SIGTERM drains gracefully: admission stops (503), running and
// queued jobs get -drain-timeout to finish, anything still in flight is
// then interrupted so its partial record is flushed to -json, and the
// process exits 0.
//
// With -journal-dir the daemon is crash-safe: every job lifecycle
// transition is appended (fsync'd) to a write-ahead journal before it
// is acknowledged, and a restart against the same directory replays the
// journal — finished jobs come back as queryable history, jobs that
// were queued or running when the process died are re-enqueued in their
// original order and run to completion. Transient failures retry with
// exponential backoff under -max-attempts; -client-rate,
// -max-queued-per-client, and -shed-latency arm per-client admission
// control.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fingers/internal/journal"
	"fingers/internal/service"
	"fingers/internal/telemetry"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 2, "jobs simulated at once")
	queueDepth := flag.Int("queue", 16, "admission queue depth (full queue returns 429)")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline applied to jobs that set none (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0, "clamp on per-job deadlines (0 = no clamp)")
	maxShards := flag.Int("max-shards", 0, "clamp on per-job sim_shards requests (0 = no clamp)")
	jsonOut := flag.String("json", "", "append one JSONL run record per finished job here")
	runTag := flag.String("run-tag", "", "default run tag stamped into records (a job's own tag wins)")
	preload := flag.String("preload", "", "comma-separated graphs to load at startup (\"all\" = every registered graph)")
	streamInterval := flag.Duration("stream-interval", 500*time.Millisecond, "cadence of partial records on /stream")
	progressEvery := flag.Int64("progress-every", 65536, "scheduler steps between live progress snapshots")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight jobs on shutdown before they are interrupted")
	journalDir := flag.String("journal-dir", "", "write-ahead journal directory; restarts replay it and resume unfinished jobs")
	maxAttempts := flag.Int("max-attempts", 3, "server-wide per-job attempt budget for transient failures (1 disables retries)")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "base backoff before a retry (doubles per attempt, capped by -retry-max)")
	retryMax := flag.Duration("retry-max", 5*time.Second, "cap on the retry backoff")
	clientRate := flag.Float64("client-rate", 0, "per-client submissions/second admitted (0 = unlimited)")
	clientBurst := flag.Int("client-burst", 0, "per-client token-bucket burst (0 = max(rate, 1))")
	maxQueuedPerClient := flag.Int("max-queued-per-client", 0, "bound on one client's queued jobs (0 = unbounded)")
	shedLatency := flag.Duration("shed-latency", 0, "queue-latency threshold to shed low-priority jobs (normal sheds at 2x; 0 = never)")
	inject := flag.String("inject", "", "fault-injection schedule for chaos testing, e.g. simulate:panic@2,journal:error@5")
	flag.Parse()

	reg := service.NewRegistry()
	if *preload != "" {
		for _, n := range strings.Split(*preload, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if err := reg.Preload(n); err != nil {
				return fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "fingersd: preloaded %s\n", *preload)
	}

	var runLog *telemetry.RunLog
	if *jsonOut != "" {
		var err error
		runLog, err = telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			return fail(err)
		}
		defer runLog.Close()
	}
	meta := telemetry.HostMeta()
	meta.Source = "fingersd"
	meta.RunTag = *runTag
	if runLog != nil {
		runLog.SetMeta(meta)
	}

	var injector *service.FaultInjector
	if *inject != "" {
		points, err := service.ParseFaultSpec(*inject)
		if err != nil {
			return fail(err)
		}
		injector = service.NewFaultInjector(points...)
		fmt.Fprintf(os.Stderr, "fingersd: fault injection armed: %s\n", *inject)
	}

	var wal *journal.Journal
	if *journalDir != "" {
		opt := journal.Options{}
		if injector != nil {
			opt.BeforeAppend = injector.JournalHook()
		}
		var err error
		wal, err = journal.Open(*journalDir, opt)
		if err != nil {
			return fail(err)
		}
		defer wal.Close()
		if skips := wal.Skips(); len(skips) > 0 {
			fmt.Fprintf(os.Stderr, "fingersd: journal replay skipped %d damaged lines\n", len(skips))
		}
	}

	mgr := service.NewManager(reg, service.Config{
		Concurrency:        *concurrency,
		QueueDepth:         *queueDepth,
		DefaultTimeout:     *defaultTimeout,
		MaxTimeout:         *maxTimeout,
		MaxShards:          *maxShards,
		ProgressEvery:      *progressEvery,
		Meta:               meta,
		Log:                runLog,
		Journal:            wal,
		Retry:              service.RetryPolicy{MaxAttempts: *maxAttempts, BaseDelay: *retryBase, MaxDelay: *retryMax},
		ClientRate:         *clientRate,
		ClientBurst:        *clientBurst,
		MaxQueuedPerClient: *maxQueuedPerClient,
		ShedLatency:        *shedLatency,
		FaultInjector:      injector,
	})
	if rs := mgr.Recovery(); rs.Enabled && (rs.Requeued > 0 || rs.RestoredTerminal > 0) {
		fmt.Fprintf(os.Stderr, "fingersd: journal replay: %d finished jobs restored, %d requeued (%d interrupted mid-run)\n",
			rs.RestoredTerminal, rs.Requeued, rs.Interrupted)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewServer(mgr, *streamInterval).Handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fingersd: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed before any signal (bad address, port in use).
		mgr.Drain(0)
		return fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "fingersd: draining")
	// Stop admission and flush in-flight jobs first, so every record —
	// partial or complete — is written before connections close.
	mgr.Drain(*drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "fingersd: drained, exiting")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fingersd:", err)
	return 1
}
