// Command mine runs the software reference miner: exact pattern-aware
// graph mining on the CPU, without any accelerator timing model.
//
// Usage:
//
//	mine -graph soc.txt -pattern tt
//	mine -graph Mi -motif 3
//	mine -graph As -pattern tc -list -limit 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
	"fingers/internal/planopt"
)

func main() {
	graphArg := flag.String("graph", "", "dataset mnemonic or edge-list path (required)")
	patternArg := flag.String("pattern", "tc", "named pattern to mine")
	motif := flag.Int("motif", 0, "count all connected k-vertex motifs instead of one pattern")
	edgeInduced := flag.Bool("edge-induced", false, "mine edge-induced subgraphs")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list embeddings instead of counting")
	limit := flag.Int("limit", 20, "max embeddings to list")
	optimize := flag.Bool("optimize", false, "pick the vertex order with the empirical cost model")
	flag.Parse()

	if *graphArg == "" {
		fmt.Fprintln(os.Stderr, "mine: -graph is required")
		os.Exit(2)
	}
	// SIGINT cancels the count: workers drain their current root chunk,
	// the partial count is reported, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	g, err := loadGraph(*graphArg)
	if err != nil {
		fatal(err)
	}
	opts := plan.Options{EdgeInduced: *edgeInduced}
	started := time.Now()
	switch {
	case *motif > 0:
		mp, err := plan.Motif(*motif, opts)
		if err != nil {
			fatal(err)
		}
		counts := mine.CountMulti(g, mp)
		for i, pl := range mp.Plans {
			fmt.Printf("%v: %d\n", pl.Pattern, counts[i])
		}
	case *list:
		p, err := pattern.ByName(*patternArg)
		if err != nil {
			fatal(err)
		}
		pl, err := plan.Compile(p, opts)
		if err != nil {
			fatal(err)
		}
		n := 0
		mine.List(g, pl, func(emb []uint32) bool {
			fmt.Println(emb)
			n++
			return n < *limit
		})
	default:
		p, err := pattern.ByName(*patternArg)
		if err != nil {
			fatal(err)
		}
		var pl *plan.Plan
		if *optimize {
			res, err := planopt.CompileBest(g, p, planopt.Options{Plan: opts})
			if err != nil {
				fatal(err)
			}
			pl = res.Plan
			fmt.Fprintf(os.Stderr, "order %v: cost %d vs heuristic %d (%d orders tried)\n",
				pl.Order, res.Cost, res.DefaultCost, res.Evaluated)
		} else {
			pl, err = plan.Compile(p, opts)
			if err != nil {
				fatal(err)
			}
		}
		count, err := mine.CountCtx(ctx, g, pl, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mine: interrupted; partial count over the roots mined so far: %d\n", count)
			os.Exit(130)
		}
		fmt.Printf("%s embeddings: %d\n", *patternArg, count)
	}
	fmt.Fprintf(os.Stderr, "[%v]\n", time.Since(started).Round(time.Millisecond))
}

func loadGraph(arg string) (*graph.Graph, error) {
	if d, err := datasets.ByName(arg); err == nil {
		return d.Graph(), nil
	}
	return graph.LoadFile(arg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mine:", err)
	os.Exit(1)
}
