// Command mine runs the software reference miner: exact pattern-aware
// graph mining on the CPU, without any accelerator timing model.
//
// Usage:
//
//	mine -graph soc.txt -pattern tt
//	mine -graph Mi -motif 3
//	mine -graph As -pattern tc -list -limit 10
//
// SIGINT or SIGTERM cancels a count gracefully: workers drain their
// current root chunk, the partial count is reported, and the process
// exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fingers/internal/datasets"
	"fingers/internal/graph"
	"fingers/internal/mine"
	"fingers/internal/pattern"
	"fingers/internal/plan"
	"fingers/internal/planopt"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	graphArg := flag.String("graph", "", "dataset mnemonic or edge-list path (required)")
	patternArg := flag.String("pattern", "tc", "named pattern to mine")
	motif := flag.Int("motif", 0, "count all connected k-vertex motifs instead of one pattern")
	edgeInduced := flag.Bool("edge-induced", false, "mine edge-induced subgraphs")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list embeddings instead of counting")
	limit := flag.Int("limit", 20, "max embeddings to list")
	optimize := flag.Bool("optimize", false, "pick the vertex order with the empirical cost model")
	jsonOut := flag.String("json", "", "append one JSONL run record per counted pattern here")
	runTag := flag.String("run-tag", "", "tag stamped into -json records so trend tooling can group this session")
	flag.Parse()

	if *graphArg == "" {
		fmt.Fprintln(os.Stderr, "mine: -graph is required")
		return 2
	}
	// SIGINT/SIGTERM cancels the count: workers drain their current root
	// chunk, the partial count is reported, and the process exits 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g, err := loadGraph(*graphArg)
	if err != nil {
		return fail(err)
	}
	var runLog *telemetry.RunLog
	if *jsonOut != "" {
		runLog, err = telemetry.OpenRunLog(*jsonOut)
		if err != nil {
			return fail(err)
		}
		defer runLog.Close()
		meta := telemetry.HostMeta()
		meta.RunTag = *runTag
		runLog.SetMeta(meta)
	}
	opts := plan.Options{EdgeInduced: *edgeInduced}
	started := time.Now()
	switch {
	case *motif > 0:
		mp, err := plan.Motif(*motif, opts)
		if err != nil {
			return fail(err)
		}
		counts, cerr := mine.CountMultiCtx(ctx, g, mp, *workers)
		for i, pl := range mp.Plans {
			fmt.Printf("%v: %d\n", pl.Pattern, counts[i])
			logMineRecord(runLog, g, *graphArg, fmt.Sprintf("%v", pl.Pattern), *workers, counts[i], cerr != nil, started)
		}
		if cerr != nil {
			return failRun(cerr, "partial per-pattern counts printed above")
		}
	case *list:
		p, err := pattern.ByName(*patternArg)
		if err != nil {
			return fail(err)
		}
		pl, err := plan.Compile(p, opts)
		if err != nil {
			return fail(err)
		}
		n := 0
		mine.List(g, pl, func(emb []uint32) bool {
			fmt.Println(emb)
			n++
			return n < *limit
		})
	default:
		p, err := pattern.ByName(*patternArg)
		if err != nil {
			return fail(err)
		}
		var pl *plan.Plan
		if *optimize {
			res, err := planopt.CompileBest(g, p, planopt.Options{Plan: opts})
			if err != nil {
				return fail(err)
			}
			pl = res.Plan
			fmt.Fprintf(os.Stderr, "order %v: cost %d vs heuristic %d (%d orders tried)\n",
				pl.Order, res.Cost, res.DefaultCost, res.Evaluated)
		} else {
			pl, err = plan.Compile(p, opts)
			if err != nil {
				return fail(err)
			}
		}
		count, cerr := mine.CountCtx(ctx, g, pl, *workers)
		logMineRecord(runLog, g, *graphArg, *patternArg, *workers, count, cerr != nil, started)
		if cerr != nil {
			return failRun(cerr, fmt.Sprintf("partial count over the roots mined so far: %d", count))
		}
		fmt.Printf("%s embeddings: %d\n", *patternArg, count)
	}
	fmt.Fprintf(os.Stderr, "[%v]\n", time.Since(started).Round(time.Millisecond))
	return 0
}

// logMineRecord appends one fingers.run/v1 record for a software count:
// arch "software", no accelerator timing (cycles stay zero), wall time
// and count carried so the trend viewer can track miner throughput.
// No-op without -json; log I/O failures are reported, never fatal.
func logMineRecord(log *telemetry.RunLog, g *graph.Graph, graphName, patternName string, workers int, count uint64, partial bool, started time.Time) {
	if log == nil {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := graph.ComputeStats(g)
	rec := telemetry.RunRecord{
		Schema: telemetry.RunSchema,
		Arch:   "software",
		Graph: telemetry.GraphInfo{
			Name:      graphName,
			Vertices:  st.Vertices,
			Edges:     st.Edges,
			AvgDegree: st.AvgDegree,
			MaxDegree: st.MaxDegree,
		},
		Experiment: "mine",
		Pattern:    patternName,
		PEs:        workers,
		Count:      count,
		Partial:    partial,
	}
	rec.StartedAt = started.UTC().Format(time.RFC3339Nano)
	rec.WallNS = time.Since(started).Nanoseconds()
	if err := log.Write(rec); err != nil {
		fmt.Fprintln(os.Stderr, "mine: run log:", err)
	}
}

func loadGraph(arg string) (*graph.Graph, error) {
	if d, err := datasets.ByName(arg); err == nil {
		return d.Graph(), nil
	}
	return graph.LoadFile(arg)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "mine:", err)
	return 1
}

// failRun reports a mining failure with its partial-progress note:
// exit 130 for a signal-driven cancellation (the shell convention for
// SIGINT), 1 for a recovered mining panic.
func failRun(err error, partialNote string) int {
	fmt.Fprintf(os.Stderr, "mine: %v; %s\n", err, partialNote)
	if se, ok := simerr.As(err); ok && se.IsCancellation() {
		return 130
	}
	return 1
}
