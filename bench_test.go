// Benchmarks regenerating the paper's evaluation: one bench per table and
// figure (§5–§6). Each iteration runs the corresponding experiment on the
// quick grid (small dataset analogues) so the whole suite finishes in
// minutes; `cmd/experiments <name>` runs the full-size grids and is what
// EXPERIMENTS.md records. Custom metrics report the figure's headline
// number (e.g. geomean speedup) alongside wall time.
package fingers_test

import (
	"testing"

	"fingers/internal/exp"
)

// benchOpts is the quick grid: the two cache-resident graphs (As, Mi)
// and three patterns spanning the parallelism classes (tc: branch-level
// dominant; tt: set/segment-level dominant; cyc: mixed), with small chips
// so a bench iteration stays under a few seconds.
var benchOpts = exp.Options{Quick: true, FingersPEs: 2, FlexPEs: 4}

// BenchmarkTable1Datasets regenerates Table 1: dataset statistics of the
// synthetic analogues (full six-graph table; generation is cached).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Area regenerates Table 2: the PE area breakdown and the
// iso-area chip sizing.
func BenchmarkTable2Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig9SinglePE regenerates Figure 9: single-PE speedup of
// FINGERS over FlexMiner (paper: 6.2× geomean, up to 13.2×).
func BenchmarkFig9SinglePE(b *testing.B) {
	opts := benchOpts
	opts.FingersPEs, opts.FlexPEs = 1, 1
	var mean, max float64
	for i := 0; i < b.N; i++ {
		grid := exp.Fig9(opts)
		mean, max = grid.Mean(), grid.Max()
	}
	b.ReportMetric(mean, "geomean-speedup")
	b.ReportMetric(max, "max-speedup")
}

// BenchmarkFig10Overall regenerates Figure 10: iso-area chip speedup
// (paper: 2.8× geomean at 20 vs 40 PEs, up to 8.9×).
func BenchmarkFig10Overall(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = exp.Fig10(benchOpts).Mean()
	}
	b.ReportMetric(mean, "geomean-speedup")
}

// BenchmarkFig11BranchLevel regenerates Figure 11: the gain from
// branch-level parallelism via the pseudo-DFS order (paper: up to 5×).
func BenchmarkFig11BranchLevel(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = exp.Fig11(benchOpts).Mean()
	}
	b.ReportMetric(mean, "geomean-gain")
}

// BenchmarkFig12IUScaling regenerates Figure 12: single-PE scalability in
// the number of IUs under the iso-area rule #IUs × s_l = 384.
func BenchmarkFig12IUScaling(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig12(benchOpts)
		best = 0
		for _, s := range r.Series {
			for _, p := range s.Points {
				if p.Speedup > best {
					best = p.Speedup
				}
			}
		}
	}
	b.ReportMetric(best, "best-speedup-vs-1IU")
}

// BenchmarkFig13CacheMiss regenerates Figure 13: shared-cache miss rate
// versus capacity for the cyc pattern.
func BenchmarkFig13CacheMiss(b *testing.B) {
	var missAtDefault float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig13(benchOpts)
		missAtDefault = r.Curves[0].Points[1].MissRate
	}
	b.ReportMetric(100*missAtDefault, "missrate-pct-at-default")
}

// BenchmarkTable3Utilization regenerates Table 3: IU active and balance
// rates of one FINGERS PE on Mi.
func BenchmarkTable3Utilization(b *testing.B) {
	var active float64
	for i := 0; i < b.N; i++ {
		r := exp.Table3(benchOpts)
		active = r.Rows[0].ActiveRate
	}
	b.ReportMetric(100*active, "active-rate-pct")
}

// BenchmarkAblations runs the design-choice sweeps DESIGN.md calls out:
// pseudo-DFS group size, divider max load and count, segment geometry,
// and root-scheduling policy.
func BenchmarkAblations(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		points = 0
		for _, r := range exp.Ablations(benchOpts) {
			points += len(r.Points)
		}
	}
	b.ReportMetric(float64(points), "config-points")
}

// BenchmarkParallelismCensus measures the §3 fine-grained parallelism
// census (available branch/set/segment parallelism per workload).
func BenchmarkParallelismCensus(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(exp.Parallelism(benchOpts).Rows)
	}
	b.ReportMetric(float64(rows), "workloads")
}
