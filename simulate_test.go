package fingers_test

import (
	"testing"

	"fingers"
)

// TestSimulateReportShape checks which report fields each option set
// populates, and that both architectures agree on the exact count.
func TestSimulateReportShape(t *testing.T) {
	g := fingers.GeneratePowerLawCluster(400, 5, 0.5, 4)
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fingers.Plan{pl}
	want := fingers.Count(g, pl)

	plain := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
	if plain.Result.Count != want {
		t.Errorf("count = %d, want %d", plain.Result.Count, want)
	}
	if plain.PerPE != nil || plain.IU.ActiveRate() != 0 {
		t.Errorf("plain report carries telemetry: %+v", plain)
	}

	stats := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2), fingers.WithStats())
	if len(stats.PerPE) != 2 || stats.IU.ActiveRate() <= 0 {
		t.Errorf("stats report incomplete: PerPE=%d active=%.2f", len(stats.PerPE), stats.IU.ActiveRate())
	}
	if stats.Result.Cycles != plain.Result.Cycles {
		t.Errorf("WithStats changed cycles: %d vs %d", stats.Result.Cycles, plain.Result.Cycles)
	}

	tr := fingers.NewChromeTrace()
	traced := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithTracer(tr))
	if traced.Result.Count != want || len(traced.PerPE) != 1 {
		t.Errorf("traced flexminer: count=%d PerPE=%d", traced.Result.Count, len(traced.PerPE))
	}

	if fingers.ArchFingers.String() != "FINGERS" || fingers.ArchFlexMiner.String() != "FlexMiner" {
		t.Errorf("arch names: %s / %s", fingers.ArchFingers, fingers.ArchFlexMiner)
	}
}

// TestDeprecatedWrappersDelegate pins the compatibility contract: the old
// entry points must return exactly what Simulate returns for the same
// configuration.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	g := fingers.GenerateErdosRenyi(300, 900, 5)
	pat, err := fingers.PatternByName("tc")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fingers.Plan{pl}

	oldRes := fingers.SimulateFingers(fingers.DefaultAcceleratorConfig(), 2, 0, g, pl)
	newRes := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
	if oldRes != newRes.Result {
		t.Errorf("SimulateFingers diverged: %+v vs %+v", oldRes, newRes.Result)
	}

	oldFm := fingers.SimulateFlexMiner(fingers.DefaultBaselineConfig(), 2, 0, g, pl)
	newFm := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithPEs(2))
	if oldFm != newFm.Result {
		t.Errorf("SimulateFlexMiner diverged: %+v vs %+v", oldFm, newFm.Result)
	}
}
