package fingers_test

import (
	"testing"

	"fingers"
)

// TestSimulateReportShape checks which report fields each option set
// populates, and that both architectures agree on the exact count.
func TestSimulateReportShape(t *testing.T) {
	g := fingers.GeneratePowerLawCluster(400, 5, 0.5, 4)
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fingers.Plan{pl}
	want := fingers.Count(g, pl)

	plain, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Result.Count != want {
		t.Errorf("count = %d, want %d", plain.Result.Count, want)
	}
	if plain.PerPE != nil || plain.IU.ActiveRate() != 0 {
		t.Errorf("plain report carries telemetry: %+v", plain)
	}

	stats, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2), fingers.WithStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerPE) != 2 || stats.IU.ActiveRate() <= 0 {
		t.Errorf("stats report incomplete: PerPE=%d active=%.2f", len(stats.PerPE), stats.IU.ActiveRate())
	}
	if stats.Result.Cycles != plain.Result.Cycles {
		t.Errorf("WithStats changed cycles: %d vs %d", stats.Result.Cycles, plain.Result.Cycles)
	}

	tr := fingers.NewChromeTrace()
	traced, err := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Result.Count != want || len(traced.PerPE) != 1 {
		t.Errorf("traced flexminer: count=%d PerPE=%d", traced.Result.Count, len(traced.PerPE))
	}

	if fingers.ArchFingers.String() != "FINGERS" || fingers.ArchFlexMiner.String() != "FlexMiner" {
		t.Errorf("arch names: %s / %s", fingers.ArchFingers, fingers.ArchFlexMiner)
	}
}

// TestDeprecatedWrappersDelegate pins the compatibility contract: the old
// entry points must return exactly what Simulate returns for the same
// configuration.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	g := fingers.GenerateErdosRenyi(300, 900, 5)
	pat, err := fingers.PatternByName("tc")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fingers.Plan{pl}

	oldRes := fingers.SimulateFingers(fingers.DefaultAcceleratorConfig(), 2, 0, g, pl)
	newRes, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	if oldRes != newRes.Result {
		t.Errorf("SimulateFingers diverged: %+v vs %+v", oldRes, newRes.Result)
	}

	oldFm := fingers.SimulateFlexMiner(fingers.DefaultBaselineConfig(), 2, 0, g, pl)
	newFm, err := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	if oldFm != newFm.Result {
		t.Errorf("SimulateFlexMiner diverged: %+v vs %+v", oldFm, newFm.Result)
	}
}

// TestSimulateParallelMatchesSerial: the façade's parallel engine path
// must agree with the serial path — exactly at Window=1, and on the
// count at the tuned default window.
func TestSimulateParallelMatchesSerial(t *testing.T) {
	g := fingers.GeneratePowerLawCluster(300, 4, 0.5, 9)
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fingers.Plan{pl}

	serial, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(4))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(4),
		fingers.WithParallelSim(fingers.ParallelConfig{Window: 1, Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Result != serial.Result {
		t.Errorf("Window=1 parallel diverges:\nserial %+v\npar    %+v", serial.Result, exact.Result)
	}
	def, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(4),
		fingers.WithParallelSim(fingers.DefaultParallelConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if def.Result.Count != serial.Result.Count {
		t.Errorf("default-window count diverges: %d vs %d", def.Result.Count, serial.Result.Count)
	}
}

// TestSimulateRejectsDegenerateConfigs: every invalid configuration is
// reported as an error, not a panic or a hang.
func TestSimulateRejectsDegenerateConfigs(t *testing.T) {
	g := fingers.GenerateErdosRenyi(100, 300, 11)
	pat, err := fingers.PatternByName("tc")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*fingers.Plan{pl}

	cases := []struct {
		name string
		run  func() error
	}{
		{"zero PEs", func() error {
			_, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(0))
			return err
		}},
		{"negative PEs", func() error {
			_, err := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithPEs(-2))
			return err
		}},
		{"unknown arch", func() error {
			_, err := fingers.Simulate(fingers.Arch(99), g, plans)
			return err
		}},
		{"nil graph", func() error {
			_, err := fingers.Simulate(fingers.ArchFingers, nil, plans)
			return err
		}},
		{"no plans", func() error {
			_, err := fingers.Simulate(fingers.ArchFingers, g, nil)
			return err
		}},
		{"zero window", func() error {
			_, err := fingers.Simulate(fingers.ArchFingers, g, plans,
				fingers.WithParallelSim(fingers.ParallelConfig{Window: 0, Workers: 2}))
			return err
		}},
		{"zero workers", func() error {
			_, err := fingers.Simulate(fingers.ArchFingers, g, plans,
				fingers.WithParallelSim(fingers.ParallelConfig{Window: 64, Workers: 0}))
			return err
		}},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}
