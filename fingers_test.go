package fingers_test

import (
	"os"
	"path/filepath"
	"testing"

	"fingers"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart
// example does: build, compile, mine, simulate, and compare.
func TestFacadeEndToEnd(t *testing.T) {
	g := fingers.GeneratePowerLawCluster(500, 5, 0.5, 7)
	st := fingers.Stats(g)
	if st.Vertices != 500 || st.Edges == 0 {
		t.Fatalf("stats = %+v", st)
	}
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := fingers.Count(g, pl)
	if got := fingers.CountParallel(g, pl, 3); got != want {
		t.Errorf("parallel count %d != %d", got, want)
	}
	plans := []*fingers.Plan{pl}
	fi, err := fingers.Simulate(fingers.ArchFingers, g, plans, fingers.WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	fm, err := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Result.Count != want || fm.Result.Count != want {
		t.Errorf("simulated counts %d/%d, want %d", fi.Result.Count, fm.Result.Count, want)
	}
	if fi.Result.Speedup(fm.Result) <= 1 {
		t.Errorf("FINGERS not faster: %.2f", fi.Result.Speedup(fm.Result))
	}
	stats, err := fingers.Simulate(fingers.ArchFingers, g, plans,
		fingers.WithPEs(1), fingers.WithStats())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Result.Count != want || stats.IU.ActiveRate() <= 0 {
		t.Errorf("stats run: count %d, active %.2f", stats.Result.Count, stats.IU.ActiveRate())
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := fingers.GenerateErdosRenyi(100, 300, 3)
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := fingers.SaveGraph(path, g); err != nil {
			t.Fatal(err)
		}
		g2, err := fingers.LoadGraph(path)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Errorf("%s: edge count changed", name)
		}
	}
	if _, err := fingers.LoadGraph(filepath.Join(dir, "missing.txt")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}

func TestFacadeMotifs(t *testing.T) {
	mp, err := fingers.CompileMotif(3, fingers.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := fingers.GeneratePowerLawCluster(300, 4, 0.6, 9)
	counts := fingers.CountMotifs(g, mp)
	if len(counts) != 2 || counts[0]+counts[1] == 0 {
		t.Errorf("motif counts = %v", counts)
	}
}

func TestFacadeEmbeddings(t *testing.T) {
	g := fingers.GraphFromEdges(4, []fingers.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	pat, _ := fingers.PatternByName("tc")
	pl, _ := fingers.CompilePlan(pat, fingers.PlanOptions{})
	var seen [][]uint32
	fingers.ListEmbeddings(g, pl, func(emb []uint32) bool {
		cp := append([]uint32(nil), emb...)
		seen = append(seen, cp)
		return true
	})
	if len(seen) != 1 {
		t.Fatalf("triangles = %v", seen)
	}
}

func TestFacadeDatasetsAndArea(t *testing.T) {
	names := fingers.DatasetNames()
	if len(names) != 6 {
		t.Errorf("datasets = %v", names)
	}
	d, err := fingers.DatasetByName("As")
	if err != nil || d.Graph().NumVertices() == 0 {
		t.Errorf("As dataset: %v", err)
	}
	if n := fingers.IsoAreaPEs(fingers.DefaultAcceleratorConfig(), 40); n < 20 || n > 27 {
		t.Errorf("iso-area PEs = %d", n)
	}
	if len(fingers.PatternNames()) < 8 {
		t.Errorf("pattern library too small: %v", fingers.PatternNames())
	}
}
