package fingers

import (
	"context"
	"fmt"

	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/mine"
)

// Arch selects which accelerator timing model Simulate runs.
type Arch int

const (
	// ArchFingers is the FINGERS design: FlexMiner's PE organization
	// augmented with the paper's three fine-grained parallelism
	// mechanisms (segmented set units, task dividers, pseudo-DFS).
	ArchFingers Arch = iota
	// ArchFlexMiner is the FlexMiner baseline the paper compares against.
	ArchFlexMiner
)

// String returns the architecture's display name.
func (a Arch) String() string {
	switch a {
	case ArchFingers:
		return "FINGERS"
	case ArchFlexMiner:
		return "FlexMiner"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// simConfig collects the functional options of one Simulate call.
type simConfig struct {
	pes        int
	cacheBytes int64
	tracer     Tracer
	stats      bool
	fiCfg      AcceleratorConfig
	fmCfg      BaselineConfig
	par        *ParallelConfig
}

// SimOption configures a Simulate call; the constructors below are the
// full set.
type SimOption func(*simConfig)

// WithPEs sets the number of processing elements (default 1).
func WithPEs(n int) SimOption { return func(c *simConfig) { c.pes = n } }

// WithSharedCache sets the shared-cache capacity in bytes; zero (the
// default) keeps the model's 4 MB.
func WithSharedCache(bytes int64) SimOption { return func(c *simConfig) { c.cacheBytes = bytes } }

// WithTracer attaches an event tracer (nil is allowed and costs nothing)
// and fills the report's PerPE cycle records.
func WithTracer(tr Tracer) SimOption { return func(c *simConfig) { c.tracer = tr } }

// WithStats fills the report's PerPE cycle records and, on ArchFingers,
// the IU utilization rates of the paper's Table 3.
func WithStats() SimOption { return func(c *simConfig) { c.stats = true } }

// WithAcceleratorConfig overrides the FINGERS PE configuration (ignored
// by ArchFlexMiner).
func WithAcceleratorConfig(cfg AcceleratorConfig) SimOption {
	return func(c *simConfig) { c.fiCfg = cfg }
}

// WithBaselineConfig overrides the FlexMiner PE configuration (ignored by
// ArchFingers).
func WithBaselineConfig(cfg BaselineConfig) SimOption {
	return func(c *simConfig) { c.fmCfg = cfg }
}

// WithParallelSim runs the simulation on the bounded-lag parallel engine
// instead of the serial event loop, using cfg.Workers host threads.
// Results are deterministic: they depend only on cfg.Window, never on
// cfg.Workers or host scheduling, and Window=1 reproduces the serial
// engine exactly. Use DefaultParallelConfig for the tuned default.
func WithParallelSim(cfg ParallelConfig) SimOption {
	return func(c *simConfig) { c.par = &cfg }
}

// SimReport is the outcome of one Simulate call. Result is always
// filled; the telemetry fields are populated on request (WithTracer,
// WithStats) because assembling them is not free on large chips.
type SimReport struct {
	// Result is the simulation outcome: cycles, exact embedding count,
	// cache and DRAM statistics, and the chip-wide cycle breakdown.
	Result SimResult
	// PerPE holds each PE's cycle attribution (buckets sum to the
	// makespan); nil unless WithTracer or WithStats was given.
	PerPE []PECycleRecord
	// IU holds the intersect-unit active/balance rates; the zero value
	// unless WithStats was given on ArchFingers.
	IU IUStats
}

// Simulate runs one accelerator timing model over the graph and plans
// and returns its report. It subsumes the deprecated Simulate* variants:
//
//	res, err := fingers.Simulate(fingers.ArchFingers, g, plans,
//	        fingers.WithPEs(20), fingers.WithStats())
//	fmt.Println(res.Result.Cycles, res.IU.ActiveRate())
//
// Defaults: 1 PE, the model's shared cache, no tracer, the serial event
// loop, and the paper's default PE configuration for the chosen
// architecture. Degenerate configurations (an unknown architecture, a
// non-positive PE count, an invalid WithParallelSim window or worker
// count, a nil graph, no plans) are reported as errors.
func Simulate(arch Arch, g *Graph, plans []*Plan, opts ...SimOption) (SimReport, error) {
	cfg := simConfig{
		pes:   1,
		fiCfg: fingerspe.DefaultConfig(),
		fmCfg: flexminer.DefaultConfig(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	var rep SimReport
	if g == nil {
		return rep, fmt.Errorf("fingers: Simulate: graph is nil")
	}
	if len(plans) == 0 {
		return rep, fmt.Errorf("fingers: Simulate: no plans given")
	}
	if cfg.pes < 1 {
		return rep, fmt.Errorf("fingers: Simulate: number of PEs must be >= 1, got %d", cfg.pes)
	}
	if cfg.par != nil {
		if err := cfg.par.Validate(); err != nil {
			return rep, fmt.Errorf("fingers: Simulate: %w", err)
		}
	}
	switch arch {
	case ArchFingers:
		chip := fingerspe.NewChip(cfg.fiCfg, cfg.pes, cfg.cacheBytes, g, plans)
		chip.SetTracer(cfg.tracer)
		if cfg.par != nil {
			res, err := chip.RunParallel(*cfg.par)
			if err != nil {
				return rep, err
			}
			rep.Result = res
		} else {
			rep.Result = chip.Run()
		}
		if cfg.stats || cfg.tracer != nil {
			rep.PerPE = chip.PERecords()
		}
		if cfg.stats {
			rep.IU = chip.AggregateStats()
		}
	case ArchFlexMiner:
		chip := flexminer.NewChip(cfg.fmCfg, cfg.pes, cfg.cacheBytes, g, plans)
		chip.SetTracer(cfg.tracer)
		if cfg.par != nil {
			res, err := chip.RunParallel(*cfg.par)
			if err != nil {
				return rep, err
			}
			rep.Result = res
		} else {
			rep.Result = chip.Run()
		}
		if cfg.stats || cfg.tracer != nil {
			rep.PerPE = chip.PERecords()
		}
	default:
		return rep, fmt.Errorf("fingers: Simulate: unknown architecture %d", int(arch))
	}
	return rep, nil
}

// CountCtx is CountParallel with cancellation: the root scheduler checks
// ctx between chunks and returns the partial count alongside ctx.Err()
// when it fires. A nil error means the count is complete.
func CountCtx(ctx context.Context, g *Graph, pl *Plan, workers int) (uint64, error) {
	return mine.CountCtx(ctx, g, pl, workers)
}
