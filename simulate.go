package fingers

import (
	"context"
	"fmt"
	"time"

	"fingers/internal/accel"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/mine"
	"fingers/internal/simerr"
	"fingers/internal/telemetry"
)

// Arch selects which accelerator timing model Simulate runs.
type Arch int

const (
	// ArchFingers is the FINGERS design: FlexMiner's PE organization
	// augmented with the paper's three fine-grained parallelism
	// mechanisms (segmented set units, task dividers, pseudo-DFS).
	ArchFingers Arch = iota
	// ArchFlexMiner is the FlexMiner baseline the paper compares against.
	ArchFlexMiner
	// ArchSISA is the FlexMiner baseline with a SISA-style set-centric
	// cost model: neighbor lists travel in their hybrid storage
	// representation (dense row / compressed bitmap / array, per the
	// graph's adaptive view), and set operations against stored rows
	// cost one probe per short-side element. Counts are identical to
	// the other architectures; only timing and traffic differ.
	ArchSISA
)

// String returns the architecture's display name.
func (a Arch) String() string {
	switch a {
	case ArchFingers:
		return "FINGERS"
	case ArchFlexMiner:
		return "FlexMiner"
	case ArchSISA:
		return "SISA"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// simConfig collects the functional options of one Simulate call.
type simConfig struct {
	pes           int
	cacheBytes    int64
	tracer        Tracer
	stats         bool
	fiCfg         AcceleratorConfig
	fmCfg         BaselineConfig
	par           *ParallelConfig
	shards        int
	ctx           context.Context
	timeout       time.Duration
	deadline      time.Time
	progressEvery int64
	progressFn    func(SimProgress)
}

// SimOption configures a Simulate call; the constructors below are the
// full set.
type SimOption func(*simConfig)

// WithPEs sets the number of processing elements (default 1).
func WithPEs(n int) SimOption { return func(c *simConfig) { c.pes = n } }

// WithSharedCache sets the shared-cache capacity in bytes; zero (the
// default) keeps the model's 4 MB.
func WithSharedCache(bytes int64) SimOption { return func(c *simConfig) { c.cacheBytes = bytes } }

// WithTracer attaches an event tracer (nil is allowed and costs nothing)
// and fills the report's PerPE cycle records.
func WithTracer(tr Tracer) SimOption { return func(c *simConfig) { c.tracer = tr } }

// WithStats fills the report's PerPE cycle records and, on ArchFingers,
// the IU utilization rates of the paper's Table 3.
func WithStats() SimOption { return func(c *simConfig) { c.stats = true } }

// WithAcceleratorConfig overrides the FINGERS PE configuration (ignored
// by ArchFlexMiner).
func WithAcceleratorConfig(cfg AcceleratorConfig) SimOption {
	return func(c *simConfig) { c.fiCfg = cfg }
}

// WithBaselineConfig overrides the FlexMiner PE configuration (ignored by
// ArchFingers).
func WithBaselineConfig(cfg BaselineConfig) SimOption {
	return func(c *simConfig) { c.fmCfg = cfg }
}

// WithParallelSim runs the simulation on the bounded-lag parallel engine
// instead of the serial event loop, using cfg.Workers host threads.
// Results are deterministic: they depend only on cfg.Window, never on
// cfg.Workers or host scheduling, and Window=1 reproduces the serial
// engine exactly. Use DefaultParallelConfig for the tuned default.
func WithParallelSim(cfg ParallelConfig) SimOption {
	return func(c *simConfig) { c.par = &cfg }
}

// WithContext makes the run cancellable: when ctx fires, the simulation
// stops within one cancellation quantum (accel.CancelCheckQuantum
// scheduling steps on the serial engine, one epoch window on the
// parallel engine) and Simulate returns the partial report — cycles
// reached, per-PE progress, dispatched-root counts, Partial set —
// alongside a *SimError wrapping ctx.Err(). A nil ctx is ignored.
func WithContext(ctx context.Context) SimOption {
	return func(c *simConfig) { c.ctx = ctx }
}

// WithDeadline bounds the run to end by the given wall-clock instant, as
// WithContext with a deadline context (the two compose: whichever fires
// first stops the run).
func WithDeadline(d time.Time) SimOption {
	return func(c *simConfig) { c.deadline = d }
}

// SimProgress is a live snapshot of a running simulation handed to the
// WithProgress callback: scheduling steps executed, the frontmost
// simulated clock, and the number of PEs still active.
type SimProgress = accel.Progress

// WithProgress invokes fn from the simulation loop every `every`
// scheduler steps (serial engine) or epoch barriers (parallel engine),
// for live status lines and streaming observers. The callback runs on
// the simulation goroutine: keep it cheap and do not retain the
// snapshot. every <= 0 or a nil fn disables reporting.
func WithProgress(every int64, fn func(SimProgress)) SimOption {
	return func(c *simConfig) {
		c.progressEvery = every
		c.progressFn = fn
	}
}

// WithTimeout bounds the run to the given wall-clock duration, as
// WithContext with a timeout context (the two compose: whichever fires
// first stops the run). A zero duration means no timeout; a negative
// one expires immediately, as with context.WithTimeout.
func WithTimeout(d time.Duration) SimOption {
	return func(c *simConfig) { c.timeout = d }
}

// SimReport is the outcome of one Simulate call. Result is always
// filled; the telemetry fields are populated on request (WithTracer,
// WithStats) because assembling them is not free on large chips.
type SimReport struct {
	// Result is the simulation outcome: cycles, exact embedding count,
	// cache and DRAM statistics, and the chip-wide cycle breakdown. On a
	// partial run Result.Cycles is the horizon — the largest simulated
	// cycle reached — and the counts cover everything mined so far.
	Result SimResult
	// Partial reports that the run stopped early — cancellation,
	// deadline expiry, or a recovered panic — so Result covers only the
	// simulated prefix. Simulate returns a non-nil *SimError whenever
	// Partial is set.
	Partial bool
	// RootsDone is the number of search-tree roots dispatched to PEs;
	// with RootsTotal it quantifies how far a partial run progressed.
	RootsDone int
	// RootsTotal is the total number of search-tree roots in the run.
	RootsTotal int
	// PerPE holds each PE's cycle attribution (buckets sum to the
	// makespan); nil unless WithTracer or WithStats was given or the run
	// ended partial (per-PE progress is part of the partial report).
	PerPE []PECycleRecord
	// IU holds the intersect-unit active/balance rates; the zero value
	// unless WithStats was given on ArchFingers.
	IU IUStats
	// Shards is the effective shard count the run was partitioned into
	// after clamping (1 for unsharded runs). See WithShards.
	Shards int
	// ShardWallNS records each shard's host wall-clock time in
	// nanoseconds, in shard order; nil on unsharded runs. The spread is
	// the sharded mode's load-balance signal.
	ShardWallNS []int64
}

// simChip is the chip surface Simulate drives, satisfied by both
// accelerator models.
type simChip interface {
	SetTracer(telemetry.Tracer)
	RunCtxWithProgress(context.Context, int64, func(accel.Progress)) (accel.Result, error)
	RunParallelCtxWithProgress(context.Context, accel.ParallelConfig, int64, func(accel.Progress)) (accel.Result, error)
	PERecords() []telemetry.PERecord
	RootsTotal() int
	RootsDispatched() int
}

// Simulate runs one accelerator timing model over the graph and plans
// and returns its report. It subsumes the deprecated Simulate* variants:
//
//	res, err := fingers.Simulate(fingers.ArchFingers, g, plans,
//	        fingers.WithPEs(20), fingers.WithStats())
//	fmt.Println(res.Result.Cycles, res.IU.ActiveRate())
//
// Defaults: 1 PE, the model's shared cache, no tracer, the serial event
// loop, and the paper's default PE configuration for the chosen
// architecture. Degenerate configurations (an unknown architecture, a
// non-positive PE count, an invalid WithParallelSim window or worker
// count, a nil graph, no plans, an invalid plan) are reported as errors.
//
// With WithContext, WithDeadline, or WithTimeout the run is
// interruptible: on cancellation Simulate returns the partial report
// (Partial set, Result covering the simulated prefix, per-PE progress,
// root counts) and a *SimError wrapping the context error. A panic
// anywhere inside the simulation surfaces the same way — as a *SimError
// attributing the engine, PE, cycle, and root — never as a crash.
func Simulate(arch Arch, g *Graph, plans []*Plan, opts ...SimOption) (rep SimReport, err error) {
	cfg := simConfig{
		pes:   1,
		fiCfg: fingerspe.DefaultConfig(),
		fmCfg: flexminer.DefaultConfig(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if g == nil {
		return rep, fmt.Errorf("fingers: Simulate: graph is nil")
	}
	if len(plans) == 0 {
		return rep, fmt.Errorf("fingers: Simulate: no plans given")
	}
	if cfg.pes < 1 {
		return rep, fmt.Errorf("fingers: Simulate: number of PEs must be >= 1, got %d", cfg.pes)
	}
	if cfg.par != nil {
		if err := cfg.par.Validate(); err != nil {
			return rep, fmt.Errorf("fingers: Simulate: %w", err)
		}
	}
	if cfg.shards < 0 {
		return rep, fmt.Errorf("fingers: Simulate: number of shards must be >= 0, got %d", cfg.shards)
	}
	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if !cfg.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.deadline)
		defer cancel()
	}
	if cfg.timeout != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// The engines recover panics inside PE steps; this guard catches the
	// remainder (chip construction, telemetry assembly) so the façade
	// never crashes the host over a simulation defect.
	defer func() {
		if r := recover(); r != nil {
			rep.Partial = true
			err = simerr.FromPanic("facade", simerr.NoPE, 0, simerr.NoRoot, r)
		}
	}()

	if shards := cfg.shards; shards > 1 {
		if shards > cfg.pes {
			shards = cfg.pes // every shard keeps at least one PE
		}
		if shards > 1 {
			return runSharded(ctx, arch, g, plans, cfg, shards)
		}
	}
	rep.Shards = 1

	var chip simChip
	var fiChip *fingerspe.Chip
	switch arch {
	case ArchFingers:
		c, cerr := fingerspe.NewChipErr(cfg.fiCfg, cfg.pes, cfg.cacheBytes, g, plans)
		if cerr != nil {
			return rep, fmt.Errorf("fingers: Simulate: %w", cerr)
		}
		fiChip, chip = c, c
	case ArchFlexMiner, ArchSISA:
		fmCfg := cfg.fmCfg
		fmCfg.SetCentric = arch == ArchSISA
		c, cerr := flexminer.NewChipErr(fmCfg, cfg.pes, cfg.cacheBytes, g, plans)
		if cerr != nil {
			return rep, fmt.Errorf("fingers: Simulate: %w", cerr)
		}
		chip = c
	default:
		return rep, fmt.Errorf("fingers: Simulate: unknown architecture %d", int(arch))
	}
	chip.SetTracer(cfg.tracer)

	every, fn := cfg.progressEvery, cfg.progressFn
	if every <= 0 || fn == nil {
		every, fn = 0, nil
	}
	var runErr error
	if cfg.par != nil {
		rep.Result, runErr = chip.RunParallelCtxWithProgress(ctx, *cfg.par, every, fn)
	} else {
		rep.Result, runErr = chip.RunCtxWithProgress(ctx, every, fn)
	}
	rep.RootsTotal = chip.RootsTotal()
	rep.RootsDone = chip.RootsDispatched()
	if cfg.stats || cfg.tracer != nil || runErr != nil {
		rep.PerPE = chip.PERecords()
	}
	if cfg.stats && fiChip != nil {
		rep.IU = fiChip.AggregateStats()
	}
	if runErr != nil {
		rep.Partial = true
		return rep, runErr
	}
	return rep, nil
}

// CountCtx is CountParallel with cancellation and panic recovery: the
// root scheduler checks ctx between chunks and returns the partial count
// alongside a *SimError wrapping ctx.Err() when it fires; a panic inside
// a mining worker returns the same way. A nil error means the count is
// complete.
func CountCtx(ctx context.Context, g *Graph, pl *Plan, workers int) (uint64, error) {
	return mine.CountCtx(ctx, g, pl, workers)
}
