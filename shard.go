package fingers

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"fingers/internal/accel"
	fingerspe "fingers/internal/fingers"
	"fingers/internal/flexminer"
	"fingers/internal/mem"
	"fingers/internal/telemetry"
)

// WithShards partitions the run's root vertices across n independent
// engine instances — each with its own chip, PE pool, cache/DRAM/NoC
// model, and speculative-memory arenas — executed on separate OS
// threads and merged into one SimReport (DESIGN.md §14). The PE budget
// is divided across shards, so WithShards(4) on a 8-PE run simulates
// four 2-PE chips over disjoint contiguous root ranges, weighted by
// root degree so each shard streams a comparable share of the CSR.
//
// Sharding changes the simulated design point: each shard owns a full
// private cache and NoC, so merged Cycles model an N-chip fleet rather
// than one chip. Embedding counts, task totals, and traffic sums are
// exactly the single-chip numbers regardless of shard count. n <= 1
// (and the default 0) runs unsharded; n larger than the PE count is
// clamped so every shard keeps at least one PE. Composes with
// WithParallelSim: each shard runs its own bounded-lag engine with the
// configured window and workers.
func WithShards(n int) SimOption { return func(c *simConfig) { c.shards = n } }

// peOffsetTracer renames PE ids in a shard's telemetry stream to the
// global id space before forwarding, so a traced sharded run emits one
// coherent event stream.
type peOffsetTracer struct {
	base int
	next telemetry.Tracer
}

func (t peOffsetTracer) TaskGroupBegin(pe, engine int, at mem.Cycles, size int) {
	t.next.TaskGroupBegin(pe+t.base, engine, at, size)
}
func (t peOffsetTracer) TaskGroupEnd(pe int, at mem.Cycles) { t.next.TaskGroupEnd(pe+t.base, at) }
func (t peOffsetTracer) SetOpIssue(pe int, at mem.Cycles, kind string, longLen, shortLen, workloads int) {
	t.next.SetOpIssue(pe+t.base, at, kind, longLen, shortLen, workloads)
}
func (t peOffsetTracer) CacheAccess(pe int, at mem.Cycles, bytes, lines, misses int64, done mem.Cycles) {
	t.next.CacheAccess(pe+t.base, at, bytes, lines, misses, done)
}
func (t peOffsetTracer) DRAMBurst(start, done mem.Cycles, addr, bytes int64) {
	t.next.DRAMBurst(start, done, addr, bytes)
}

// shardPEShares splits a PE budget across shards as evenly as integers
// allow: pes/shards each, with the first pes%shards shards taking one
// extra.
func shardPEShares(pes, shards int) []int {
	shares := make([]int, shards)
	for s := range shares {
		shares[s] = pes / shards
		if s < pes%shards {
			shares[s]++
		}
	}
	return shares
}

// runSharded executes one Simulate call in sharded mode: shards
// independent chips over a degree-weighted contiguous root partition,
// run concurrently (serially when a tracer is attached, to keep the
// event stream in deterministic shard order), merged deterministically
// in shard order. The caller has already validated cfg and resolved the
// context; shards is the effective (clamped) shard count, >= 2.
func runSharded(ctx context.Context, arch Arch, g *Graph, plans []*Plan, cfg simConfig, shards int) (rep SimReport, err error) {
	for i, pl := range plans {
		if pl == nil {
			return rep, fmt.Errorf("fingers: Simulate: plan %d is nil", i)
		}
		if verr := pl.Validate(); verr != nil {
			return rep, fmt.Errorf("fingers: Simulate: plan %d: %w", i, verr)
		}
	}

	shares := shardPEShares(cfg.pes, shards)
	parts := accel.PartitionRootsWeighted(g.NumVertices(), func(i int) int64 {
		d := float64(g.Degree(uint32(i)))
		return int64(d*math.Sqrt(d)) + 1
	}, shares)

	chips := make([]simChip, shards)
	fiChips := make([]*fingerspe.Chip, shards)
	for s := 0; s < shards; s++ {
		sched := accel.NewRootSchedulerRange(parts[s][0], parts[s][1])
		switch arch {
		case ArchFingers:
			c := fingerspe.NewChipWithScheduler(cfg.fiCfg, shares[s], cfg.cacheBytes, g, plans, sched)
			fiChips[s], chips[s] = c, c
		case ArchFlexMiner, ArchSISA:
			fmCfg := cfg.fmCfg
			fmCfg.SetCentric = arch == ArchSISA
			chips[s] = flexminer.NewChipWithScheduler(fmCfg, shares[s], cfg.cacheBytes, g, plans, sched)
		default:
			return rep, fmt.Errorf("fingers: Simulate: unknown architecture %d", int(arch))
		}
	}

	// A traced run serializes shards so events reach the tracer in
	// deterministic (shard, cycle) order; the id-offset wrapper moves
	// each shard's PEs into the global id space. Untraced runs — the
	// performance path — run every shard on its own OS thread.
	serialize := cfg.tracer != nil
	peBase := 0
	for s := range chips {
		if cfg.tracer != nil {
			chips[s].SetTracer(peOffsetTracer{base: peBase, next: cfg.tracer})
		}
		peBase += shares[s]
	}

	// The progress callback contract is per-engine; shard snapshots are
	// forwarded as they come, serialized by a mutex so a WithProgress fn
	// never runs concurrently with itself.
	every, fn := cfg.progressEvery, cfg.progressFn
	if every <= 0 || fn == nil {
		every, fn = 0, nil
	}
	if fn != nil && !serialize {
		var mu sync.Mutex
		inner := fn
		fn = func(p SimProgress) {
			mu.Lock()
			defer mu.Unlock()
			inner(p)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]SimResult, shards)
	errs := make([]error, shards)
	walls := make([]int64, shards)
	var errMu sync.Mutex
	runShard := func(s int) {
		t0 := time.Now()
		var rerr error
		if cfg.par != nil {
			results[s], rerr = chips[s].RunParallelCtxWithProgress(ctx, *cfg.par, every, fn)
		} else {
			results[s], rerr = chips[s].RunCtxWithProgress(ctx, every, fn)
		}
		walls[s] = time.Since(t0).Nanoseconds()
		if rerr != nil {
			errMu.Lock()
			errs[s] = rerr
			if err == nil {
				err = rerr
				// Stop sibling shards: the merged report is partial
				// either way, and finishing them buys nothing.
				cancel()
			}
			errMu.Unlock()
		}
	}
	if serialize {
		for s := range chips {
			runShard(s)
		}
	} else {
		var wg sync.WaitGroup
		for s := range chips {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				runShard(s)
			}(s)
		}
		wg.Wait()
	}

	rep = mergeShardReports(cfg, chips, fiChips, shares, results, errs)
	rep.ShardWallNS = walls
	if err != nil {
		rep.Partial = true
	}
	return rep, err
}

// mergeShardReports folds per-shard outcomes into one SimReport in
// canonical shard order, so the merged report is a pure function of the
// shard results: counts, tasks, busy cycles and traffic sum; the
// makespan is the fleet horizon (max over shards); per-PE records are
// renamed into the global PE id space with Idle extended to the global
// horizon, keeping the breakdown-sums-to-makespan invariant.
func mergeShardReports(cfg simConfig, chips []simChip, fiChips []*fingerspe.Chip, shares []int, results []SimResult, errs []error) SimReport {
	rep := SimReport{Shards: len(chips)}
	for _, r := range results {
		if r.Cycles > rep.Result.Cycles {
			rep.Result.Cycles = r.Cycles
		}
	}
	global := rep.Result.Cycles
	anyErr := false
	for s, r := range results {
		rep.Result.Count += r.Count
		rep.Result.Tasks += r.Tasks
		rep.Result.PEBusy += r.PEBusy
		rep.Result.SharedCache.LineAccesses += r.SharedCache.LineAccesses
		rep.Result.SharedCache.LineMisses += r.SharedCache.LineMisses
		rep.Result.DRAM.Accesses += r.DRAM.Accesses
		rep.Result.DRAM.BytesMoved += r.DRAM.BytesMoved
		bd := r.Breakdown
		bd.Idle += (global - r.Cycles) * mem.Cycles(shares[s])
		rep.Result.Breakdown.Accumulate(bd)
		rep.RootsTotal += chips[s].RootsTotal()
		rep.RootsDone += chips[s].RootsDispatched()
		if errs[s] != nil {
			anyErr = true
		}
	}
	if cfg.stats || cfg.tracer != nil || anyErr {
		base := 0
		for s, c := range chips {
			lag := global - results[s].Cycles
			for _, r := range c.PERecords() {
				r.PE += base
				r.Cycles = global
				r.Breakdown.Idle += lag
				rep.PerPE = append(rep.PerPE, r)
			}
			base += shares[s]
		}
	}
	if cfg.stats && fiChips[0] != nil {
		var iu IUStats
		for _, c := range fiChips {
			s := c.AggregateStats()
			iu.BusyIUCycles += s.BusyIUCycles
			iu.AssignedIUCycles += s.AssignedIUCycles
			iu.TotalCycles += s.TotalCycles
			iu.BalanceNum += s.BalanceNum
			iu.BalanceDen += s.BalanceDen
			iu.NumIUs = s.NumIUs
		}
		rep.IU = iu
	}
	return rep
}
