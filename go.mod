module fingers

go 1.22
