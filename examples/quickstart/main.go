// Quickstart: build a graph, compile a pattern into an execution plan,
// mine it in software, then simulate the same workload on the FINGERS
// accelerator and its FlexMiner baseline.
package main

import (
	"fmt"
	"log"

	"fingers"
)

func main() {
	// A small synthetic social network: power-law degrees, many triangles.
	g := fingers.GeneratePowerLawCluster(2000, 6, 0.6, 42)
	st := fingers.Stats(g)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)

	// The paper's running example: the tailed triangle (Figures 1 and 2).
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		log.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution plan:\n%v\n", pl)

	// Exact software mining (the correctness reference).
	count := fingers.CountParallel(g, pl, 0)
	fmt.Printf("tailed triangles: %d\n\n", count)

	// The same workload on one FINGERS PE and one FlexMiner PE.
	fi := fingers.SimulateFingers(fingers.DefaultAcceleratorConfig(), 1, 0, g, pl)
	fm := fingers.SimulateFlexMiner(fingers.DefaultBaselineConfig(), 1, 0, g, pl)
	if fi.Count != count || fm.Count != count {
		log.Fatalf("simulators disagree with software: %d / %d vs %d", fi.Count, fm.Count, count)
	}
	fmt.Printf("FINGERS   1 PE: %s\n", fi)
	fmt.Printf("FlexMiner 1 PE: %s\n", fm)
	fmt.Printf("single-PE speedup: %.2fx\n", fi.Speedup(fm))
}
