// Quickstart: build a graph, compile a pattern into an execution plan,
// mine it in software, then simulate the same workload on the FINGERS
// accelerator and its FlexMiner baseline.
package main

import (
	"fmt"
	"log"

	"fingers"
)

func main() {
	// A small synthetic social network: power-law degrees, many triangles.
	g := fingers.GeneratePowerLawCluster(2000, 6, 0.6, 42)
	st := fingers.Stats(g)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)

	// The paper's running example: the tailed triangle (Figures 1 and 2).
	pat, err := fingers.PatternByName("tt")
	if err != nil {
		log.Fatal(err)
	}
	pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution plan:\n%v\n", pl)

	// Exact software mining (the correctness reference).
	count := fingers.CountParallel(g, pl, 0)
	fmt.Printf("tailed triangles: %d\n\n", count)

	// The same workload on one FINGERS PE and one FlexMiner PE.
	fi, err := fingers.Simulate(fingers.ArchFingers, g, []*fingers.Plan{pl})
	if err != nil {
		log.Fatal(err)
	}
	fm, err := fingers.Simulate(fingers.ArchFlexMiner, g, []*fingers.Plan{pl})
	if err != nil {
		log.Fatal(err)
	}
	if fi.Result.Count != count || fm.Result.Count != count {
		log.Fatalf("simulators disagree with software: %d / %d vs %d",
			fi.Result.Count, fm.Result.Count, count)
	}
	fmt.Printf("FINGERS   1 PE: %s\n", fi.Result)
	fmt.Printf("FlexMiner 1 PE: %s\n", fm.Result)
	fmt.Printf("single-PE speedup: %.2fx\n", fi.Result.Speedup(fm.Result))
}
