// Motif census: multi-pattern mining (the paper's 3mc benchmark)
// generalized to 3- and 4-vertex motifs. Counts every connected induced
// subgraph class in one pass per size and prints the motif spectrum —
// the fingerprint bioinformatics and social-science applications use.
package main

import (
	"fmt"
	"log"

	"fingers"
)

func main() {
	d, err := fingers.DatasetByName("Mi")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph()
	st := fingers.Stats(g)
	fmt.Printf("graph Mi: %d vertices, %d edges\n\n", st.Vertices, st.Edges)

	for _, k := range []int{3, 4} {
		mp, err := fingers.CompileMotif(k, fingers.PlanOptions{})
		if err != nil {
			log.Fatal(err)
		}
		counts := fingers.CountMotifs(g, mp)
		fmt.Printf("%d-motif spectrum (%d connected patterns):\n", k, len(mp.Plans))
		var total uint64
		for i, pl := range mp.Plans {
			fmt.Printf("  %-28v %12d\n", pl.Pattern, counts[i])
			total += counts[i]
		}
		fmt.Printf("  %-28s %12d\n\n", "total connected subgraphs", total)
	}

	// The accelerator runs the same multi-pattern plan: trunks share the
	// search-tree root (paper §2.1).
	mp, err := fingers.CompileMotif(3, fingers.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fingers.Simulate(fingers.ArchFingers, g, mp.Plans, fingers.WithPEs(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-motif on a 4-PE FINGERS chip: %s\n", rep.Result)
}
