// Triangle census: the social-network analysis the paper's introduction
// motivates. Counts triangles and wedges across the Table 1 dataset
// analogues, derives each network's global clustering coefficient, and
// lists a few concrete triangles.
package main

import (
	"fmt"
	"log"

	"fingers"
)

func main() {
	tri, err := fingers.PatternByName("tc")
	if err != nil {
		log.Fatal(err)
	}
	wedge, err := fingers.PatternByName("wedge")
	if err != nil {
		log.Fatal(err)
	}
	triPlan, err := fingers.CompilePlan(tri, fingers.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	wedgePlan, err := fingers.CompilePlan(wedge, fingers.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s %12s %12s %12s %12s\n", "", "vertices", "triangles", "wedges", "clustering")
	for _, name := range []string{"As", "Mi", "Yo"} {
		d, err := fingers.DatasetByName(name)
		if err != nil {
			log.Fatal(err)
		}
		g := d.Graph()
		triangles := fingers.CountParallel(g, triPlan, 0)
		// The wedge plan is vertex-induced: it counts open wedges only, so
		// closed ones (triangles) are added back for the clustering ratio.
		openWedges := fingers.CountParallel(g, wedgePlan, 0)
		allWedges := openWedges + 3*triangles
		clustering := 0.0
		if allWedges > 0 {
			clustering = 3 * float64(triangles) / float64(allWedges)
		}
		fmt.Printf("%-4s %12d %12d %12d %12.3f\n",
			name, fingers.Stats(g).Vertices, triangles, openWedges, clustering)
	}

	// Concrete embeddings for the smallest network.
	d, err := fingers.DatasetByName("As")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst five triangles in As:")
	n := 0
	fingers.ListEmbeddings(d.Graph(), triPlan, func(emb []uint32) bool {
		fmt.Printf("  %v\n", emb)
		n++
		return n < 5
	})
}
