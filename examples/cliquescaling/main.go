// Clique scaling: k-clique listing for k = 3, 4, 5 on a clique-rich
// graph, comparing the FINGERS accelerator against the FlexMiner baseline
// at equal chip area, and showing how branch-level parallelism (the
// pseudo-DFS task groups) is what carries clique patterns — the paper's
// §6.2/§6.4 observation.
package main

import (
	"fmt"
	"log"

	"fingers"
)

func main() {
	d, err := fingers.DatasetByName("Mi")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph()

	cfg := fingers.DefaultAcceleratorConfig()
	fiPEs := fingers.IsoAreaPEs(cfg, 8) // budget of 8 baseline PEs
	fmt.Printf("iso-area chips: %d FINGERS PEs vs 8 FlexMiner PEs\n\n", fiPEs)
	fmt.Printf("%-5s %14s %14s %10s %14s\n", "k", "cliques", "FINGERS cyc", "speedup", "pseudo-DFS gain")

	for _, name := range []string{"tc", "4cl", "5cl"} {
		pat, err := fingers.PatternByName(name)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := fingers.CompilePlan(pat, fingers.PlanOptions{})
		if err != nil {
			log.Fatal(err)
		}
		plans := []*fingers.Plan{pl}
		fi, err := fingers.Simulate(fingers.ArchFingers, g, plans,
			fingers.WithAcceleratorConfig(cfg), fingers.WithPEs(fiPEs))
		if err != nil {
			log.Fatal(err)
		}
		fm, err := fingers.Simulate(fingers.ArchFlexMiner, g, plans, fingers.WithPEs(8))
		if err != nil {
			log.Fatal(err)
		}
		if fi.Result.Count != fm.Result.Count {
			log.Fatalf("%s: counts diverge (%d vs %d)", name, fi.Result.Count, fm.Result.Count)
		}
		// Ablate branch-level parallelism: strict DFS, single-task groups.
		strict := cfg
		strict.PseudoDFS = false
		noBranch, err := fingers.Simulate(fingers.ArchFingers, g, plans,
			fingers.WithAcceleratorConfig(strict), fingers.WithPEs(fiPEs))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %14d %14d %9.2fx %13.2fx\n",
			name, fi.Result.Count, fi.Result.Cycles,
			fi.Result.Speedup(fm.Result), fi.Result.Speedup(noBranch.Result))
	}
	fmt.Println("\ncliques gain little from set-level parallelism (all candidate sets")
	fmt.Println("are identical), so the pseudo-DFS gain column explains the speedup.")
}
